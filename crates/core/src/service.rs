//! The distributed index service: publishing, lookups, search, caching.
//!
//! [`IndexService`] layers the paper's indexing architecture over any
//! [`Dht`] substrate:
//!
//! * [`publish`](IndexService::publish) stores a file under its MSD key and
//!   installs the scheme's query-to-query mappings (validating the covering
//!   relation on every edge — "resilient to arbitrary linking", §IV-D);
//! * [`lookup_step`](IndexService::lookup_step) is one user-system
//!   interaction: it resolves the node responsible for `h(q)` and returns
//!   the node's cached shortcuts and regular index entries for `q`;
//! * [`search`](IndexService::search) is the *automated* lookup mode
//!   (§IV-B): it recursively explores the indexes — generalizing first if
//!   the query is not indexed — and returns every matching file;
//! * [`create_shortcuts`](IndexService::create_shortcuts) implements the
//!   adaptive cache write path for the configured [`CachePolicy`];
//! * [`unpublish`](IndexService::unpublish) removes a file and recursively
//!   cleans up dangling index entries (§IV-C read/write semantics).

use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use bytes::Bytes;
use p2p_index_dht::{Dht, DhtError, DhtOp, DhtResponse, Key, NodeId, SplitMix64};
use p2p_index_obs::{MetricsRegistry, Trace, TraceRecorder};
use p2p_index_xmldoc::Descriptor;
use p2p_index_xpath::Query;

use crate::cache::{CachePolicy, ShortcutCache};
use crate::retry::{RetryPolicy, RetryStats};
use crate::scheme::IndexScheme;
use crate::target::{DecodeTargetError, IndexTarget};
use crate::traffic::Traffic;

/// Errors returned by index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The DHT has no live nodes.
    EmptyNetwork,
    /// A scheme produced an edge whose source does not cover its target;
    /// inserting it would break the index's safety invariant.
    NotCovering {
        /// Canonical text of the offending source query.
        from: String,
        /// Canonical text of the offending target query.
        to: String,
    },
    /// A stored index entry failed to decode.
    Decode(DecodeTargetError),
    /// A DHT operation failed even after the retry policy was exhausted.
    Dht(DhtError),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::EmptyNetwork => write!(f, "network has no live nodes"),
            IndexError::NotCovering { from, to } => {
                write!(
                    f,
                    "index edge violates covering: {from} does not cover {to}"
                )
            }
            IndexError::Decode(e) => write!(f, "corrupt index entry: {e}"),
            IndexError::Dht(e) => write!(f, "dht operation failed: {e}"),
        }
    }
}

impl Error for IndexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IndexError::Decode(e) => Some(e),
            IndexError::Dht(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeTargetError> for IndexError {
    fn from(e: DecodeTargetError) -> Self {
        IndexError::Decode(e)
    }
}

impl From<DhtError> for IndexError {
    fn from(e: DhtError) -> Self {
        match e {
            // Preserve the historical error for the structural case.
            DhtError::NoLiveNodes => IndexError::EmptyNetwork,
            other => IndexError::Dht(other),
        }
    }
}

/// The result of one user-system interaction ([`IndexService::lookup_step`]).
#[derive(Debug, Clone, Default)]
pub struct StepResponse {
    /// The node that served the lookup.
    pub node: Option<NodeId>,
    /// Shortcut targets found in the node's adaptive cache.
    pub cached: Vec<IndexTarget>,
    /// Regular index entries stored under the query's key.
    pub indexed: Vec<IndexTarget>,
}

impl StepResponse {
    /// All returned targets, cached first.
    pub fn all_targets(&self) -> impl Iterator<Item = &IndexTarget> {
        self.cached.iter().chain(self.indexed.iter())
    }

    /// `true` when the node returned nothing — the query is not indexed.
    pub fn is_empty(&self) -> bool {
        self.cached.is_empty() && self.indexed.is_empty()
    }
}

/// A file located by a search: its most specific query and its handle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FileHit {
    /// The MSD under which the file is stored.
    pub msd: Query,
    /// The stored file handle.
    pub file: String,
}

/// How complete a search's answer is, under faults and retries.
///
/// A search over a faulty substrate no longer pretends every sub-lookup
/// succeeded: lookups that failed even after retrying are *abandoned* and
/// recorded here, marking the result as possibly partial.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Completeness {
    /// DHT operation attempts issued by this search (including retries).
    pub attempts: u64,
    /// Retries among those attempts (0 on a healthy substrate).
    pub retries: u64,
    /// Sub-lookups abandoned after exhausting the retry budget. Non-zero
    /// means some index branch went unexplored.
    pub abandoned: u32,
    /// Simulated backoff delay accumulated by this search, in milliseconds.
    pub backoff_ms: u64,
}

impl Completeness {
    /// `true` when some index branch went unexplored, so files matching the
    /// query may be missing from the result.
    pub fn is_partial(&self) -> bool {
        self.abandoned > 0
    }
}

/// The outcome of an automated [`IndexService::search`].
#[derive(Debug, Clone, Default)]
pub struct SearchReport {
    /// Every file whose descriptor matches the query.
    pub files: Vec<FileHit>,
    /// User-system interactions performed (index lookups, including the
    /// final file fetches).
    pub interactions: u32,
    /// How many extra lookups were spent generalizing a non-indexed query
    /// (0 when the query was indexed; the paper's "recoverable error" case
    /// otherwise).
    pub generalization_steps: u32,
    /// Retry/abandonment record: how trustworthy `files` is under faults.
    pub completeness: Completeness,
}

impl SearchReport {
    /// Did the search have to generalize (i.e. was the original query not
    /// indexed)?
    pub fn generalized(&self) -> bool {
        self.generalization_steps > 0
    }

    /// `true` when faults caused some index branch to go unexplored.
    pub fn is_partial(&self) -> bool {
        self.completeness.is_partial()
    }
}

/// Reusable BFS state for [`IndexService::search`]: the sets, queues, and
/// level buffers a search needs are kept on the service and cleared between
/// searches, so a query burst pays for their capacity once instead of
/// reallocating per search.
#[derive(Debug, Default)]
struct SearchScratch {
    /// Queries whose index entries were already fetched (or enqueued).
    visited: HashSet<Query>,
    /// Phase-2 BFS queue of `(query, its index entries)`.
    queue: VecDeque<(Query, StepResponse)>,
    /// Generalizations already probed (or queued for probing).
    seen: HashSet<Query>,
    /// Next generalization level being accumulated.
    frontier: Vec<Query>,
    /// Current generalization level (one batched probe wave).
    level: Vec<Query>,
    /// Fresh child queries referenced by the node being expanded.
    children: Vec<Query>,
}

impl SearchScratch {
    fn clear(&mut self) {
        self.visited.clear();
        self.queue.clear();
        self.seen.clear();
        self.frontier.clear();
        self.level.clear();
        self.children.clear();
    }
}

/// The distributed index service over a DHT substrate.
///
/// # Examples
///
/// ```
/// use p2p_index_core::{CachePolicy, IndexService, SimpleScheme};
/// use p2p_index_dht::RingDht;
/// use p2p_index_xmldoc::Descriptor;
///
/// let mut service = IndexService::new(RingDht::with_named_nodes(50), CachePolicy::Single);
/// let d = Descriptor::parse(
///     "<article><author><first>John</first><last>Smith</last></author>\
///      <title>TCP</title><conf>SIGCOMM</conf><year>1989</year></article>",
/// )?;
/// service.publish(&d, "x.pdf", &SimpleScheme)?;
///
/// let report = service.search(&"/article/author[first/John][last/Smith]".parse()?)?;
/// assert_eq!(report.files.len(), 1);
/// assert_eq!(report.files[0].file, "x.pdf");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct IndexService<D> {
    dht: D,
    policy: CachePolicy,
    caches: HashMap<NodeId, ShortcutCache>,
    traffic: Traffic,
    node_queries: HashMap<NodeId, u64>,
    retry: RetryPolicy,
    retry_rng: SplitMix64,
    retry_stats: RetryStats,
    /// Simulated clock, advanced by retry backoff (milliseconds).
    sim_clock_ms: u64,
    /// Interned `query → h(q)` keys: each distinct query is SHA-1-hashed at
    /// most once per service lifetime; steady-state lookups only pay a
    /// `HashMap` probe on the query's memoized canonical text.
    key_cache: HashMap<Query, Key>,
    /// Interned `wire bytes → target` decodes: each distinct stored value is
    /// parsed at most once per service lifetime. Steady-state lookups hand
    /// back a cheap clone (`Arc` bumps for query targets) instead of
    /// re-parsing the same query text on every `Get` that returns it. Like
    /// `key_cache` this memoizes a pure function of the bytes, so entries
    /// can never go stale.
    decode_cache: HashMap<Bytes, IndexTarget>,
    /// Reusable scratch buffers for [`search`](Self::search): the BFS
    /// queue/visited sets and the generalization frontier survive across
    /// searches instead of being reallocated per query.
    search_scratch: SearchScratch,
    /// Reusable wire-encode buffer for the write paths: every entry of a
    /// publish wave is encoded into this one buffer instead of through a
    /// per-entry `format!` temporary (publish was the allocation-heaviest
    /// phase under `repro bench --profile`).
    encode_scratch: Vec<u8>,
    /// Shortcut-cache admission threshold applied to every node cache
    /// (see [`set_cache_admission`](Self::set_cache_admission)).
    cache_admission: u32,
    /// Observability sink (disabled by default; see [`set_metrics`](Self::set_metrics)).
    metrics: MetricsRegistry,
    /// Active lookup trace, if [`start_trace`](Self::start_trace) is pending.
    tracer: Option<TraceRecorder>,
}

impl<D: Dht> IndexService<D> {
    /// Creates a service over `dht` with the given cache policy and no
    /// retries ([`RetryPolicy::none`]).
    pub fn new(dht: D, policy: CachePolicy) -> Self {
        Self::with_retry(dht, policy, RetryPolicy::none())
    }

    /// Creates a service that retries failed DHT operations per `retry`.
    pub fn with_retry(dht: D, policy: CachePolicy, retry: RetryPolicy) -> Self {
        IndexService {
            dht,
            policy,
            caches: HashMap::new(),
            traffic: Traffic::new(),
            node_queries: HashMap::new(),
            retry,
            retry_rng: SplitMix64::new(retry.seed),
            retry_stats: RetryStats::default(),
            sim_clock_ms: 0,
            key_cache: HashMap::new(),
            decode_cache: HashMap::new(),
            search_scratch: SearchScratch::default(),
            encode_scratch: Vec::new(),
            cache_admission: 0,
            metrics: MetricsRegistry::default(),
            tracer: None,
        }
    }

    /// Sets the shortcut-cache admission threshold: a key must be seen
    /// this many times before a cache slot is created for it (`0`, the
    /// default, admits on first sight — the paper's behavior). Applies to
    /// every existing and future node cache. Load-driven tuning for
    /// hot-spot scenarios: flash-crowd keys clear the bar immediately,
    /// one-off queries stop churning the cache.
    pub fn set_cache_admission(&mut self, threshold: u32) {
        self.cache_admission = threshold;
        for cache in self.caches.values_mut() {
            cache.set_admission_threshold(threshold);
        }
    }

    /// Encodes `target` via the reusable scratch buffer (one buffer per
    /// service instead of a `format!` temporary per entry).
    fn encode_target(&mut self, target: &IndexTarget) -> Bytes {
        self.encode_scratch.clear();
        target.encode_into(&mut self.encode_scratch);
        Bytes::copy_from_slice(&self.encode_scratch)
    }

    /// Attaches a metrics registry to the whole stack: the service itself
    /// (`index.*`, `retry.*` series), every existing and future shortcut
    /// cache (`cache.*`), and the DHT substrate (`dht.*`, via
    /// [`Dht::set_metrics`]). Pass [`MetricsRegistry::disabled`] to turn
    /// recording back off.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics.clone();
        self.dht.set_metrics(metrics.clone());
        for cache in self.caches.values_mut() {
            cache.set_metrics(metrics.clone());
        }
    }

    /// The attached metrics registry (disabled unless
    /// [`set_metrics`](Self::set_metrics) was called).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Starts recording a trace; every subsequent search/lookup adds spans
    /// until [`finish_trace`](Self::finish_trace) collects the tree.
    pub fn start_trace(&mut self, label: impl Into<String>) {
        self.tracer = Some(TraceRecorder::new(label));
    }

    /// Stops recording and returns the trace tree (`None` if
    /// [`start_trace`](Self::start_trace) was never called).
    pub fn finish_trace(&mut self) -> Option<Trace> {
        self.tracer.take().map(TraceRecorder::finish)
    }

    /// `true` while a trace recording is active.
    pub fn is_tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Replaces the retry policy and reseeds its jitter RNG.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
        self.retry_rng = SplitMix64::new(retry.seed);
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Counters for the retry work performed so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// The simulated clock: total backoff delay accumulated, in
    /// milliseconds. Stays 0 on a healthy substrate.
    pub fn sim_clock_ms(&self) -> u64 {
        self.sim_clock_ms
    }

    /// Issues one DHT operation under the retry policy: transient faults
    /// are retried (with exponential, jittered, simulated-time backoff)
    /// while the attempt budget lasts; structural faults and exhausted
    /// budgets surface as errors.
    ///
    /// Semantically a unary call is a batch of one, and the per-attempt
    /// accounting (retry stats, metrics, trace events, backoff clock)
    /// is identical to [`dht_execute_many`](Self::dht_execute_many) on a
    /// singleton batch. It is implemented directly — not by allocating a
    /// one-element batch — because unary ops are the lookup hot path and
    /// the batch plumbing costs four `Vec` allocations per op.
    fn dht_execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        let may_retry = self.retry.max_attempts > 1;
        // Cloned only while a retry is actually possible, exactly like the
        // batched path's `retained` slots.
        let retained = if may_retry { Some(op.clone()) } else { None };
        let kind = op.kind();
        self.retry_stats.attempts += 1;
        self.metrics.incr("retry.attempts");
        let result = self.dht.execute(op);
        if let Some(t) = &mut self.tracer {
            let event = match &result {
                Ok(resp) => format!("dht {kind} -> {}", describe_response(resp)),
                Err(e) => format!("dht {kind} attempt 1 -> {e}"),
            };
            t.event(event);
        }
        match result {
            Ok(resp) => Ok(resp),
            Err(e) if e.is_transient() && may_retry => {
                let op = retained.expect("op retained while retries remain");
                self.retry_tail(kind, op)
            }
            Err(e) => {
                self.retry_stats.gave_up += 1;
                self.metrics.incr("retry.gave_up");
                Err(e)
            }
        }
    }

    /// Issues a batch of *independent* DHT operations under the retry
    /// policy. The whole batch goes to the substrate as one
    /// [`Dht::execute_many`] wave — on a networked substrate that is one
    /// pipelined frame pair per routed member — and ops that failed
    /// transiently then burn their remaining budget one at a time in op
    /// order. Per-op retry accounting (`retry.*` stats and metrics,
    /// trace events, the simulated backoff clock) is identical to the
    /// unary sequence, and each `DhtOp` is cloned only while a further
    /// retry is actually possible.
    fn dht_execute_many(&mut self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        if ops.is_empty() {
            return Vec::new();
        }
        let may_retry = self.retry.max_attempts > 1;
        let mut retained: Vec<Option<DhtOp>> = if may_retry {
            ops.iter().map(|op| Some(op.clone())).collect()
        } else {
            vec![None; ops.len()]
        };
        let kinds: Vec<&'static str> = ops.iter().map(DhtOp::kind).collect();
        let count = ops.len() as u64;
        self.retry_stats.attempts += count;
        self.metrics.add("retry.attempts", count);
        let mut results = self.dht.execute_many(ops);
        if self.tracer.is_some() {
            for (kind, result) in kinds.iter().zip(&results) {
                let event = match result {
                    Ok(resp) => format!("dht {kind} -> {}", describe_response(resp)),
                    Err(e) => format!("dht {kind} attempt 1 -> {e}"),
                };
                if let Some(t) = &mut self.tracer {
                    t.event(event);
                }
            }
        }
        for (i, slot) in results.iter_mut().enumerate() {
            match slot {
                Ok(_) => {}
                Err(e) if e.is_transient() && may_retry => {
                    let op = retained[i]
                        .take()
                        .expect("op retained while retries remain");
                    *slot = self.retry_tail(kinds[i], op);
                }
                Err(_) => {
                    self.retry_stats.gave_up += 1;
                    self.metrics.incr("retry.gave_up");
                }
            }
        }
        results
    }

    /// Continues one op's retry loop after its first (batched) attempt
    /// failed transiently. Entered only when the budget allows at least
    /// one more attempt; the op is cloned only while yet another retry
    /// could follow the attempt being sent.
    fn retry_tail(&mut self, kind: &'static str, op: DhtOp) -> Result<DhtResponse, DhtError> {
        let mut attempt = 1u32;
        let mut pending = Some(op);
        loop {
            let delay = self.retry.backoff_ms(attempt, &mut self.retry_rng);
            self.sim_clock_ms += delay;
            self.retry_stats.backoff_ms += delay;
            self.retry_stats.retries += 1;
            self.metrics.incr("retry.retries");
            self.metrics.add("retry.backoff_ms", delay);
            if let Some(t) = &mut self.tracer {
                t.event(format!("backoff {delay}ms, retrying"));
            }
            attempt += 1;
            self.retry_stats.attempts += 1;
            self.metrics.incr("retry.attempts");
            let current = pending.take().expect("op retained while retries remain");
            let send = if attempt < self.retry.max_attempts {
                pending = Some(current.clone());
                current
            } else {
                current
            };
            let result = self.dht.execute(send);
            if let Some(t) = &mut self.tracer {
                match &result {
                    Ok(resp) => t.event(format!("dht {kind} -> {}", describe_response(resp))),
                    Err(e) => t.event(format!("dht {kind} attempt {attempt} -> {e}")),
                }
            }
            match result {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_transient() && attempt < self.retry.max_attempts => {}
                Err(e) => {
                    self.retry_stats.gave_up += 1;
                    self.metrics.incr("retry.gave_up");
                    return Err(e);
                }
            }
        }
    }

    /// The DHT key of a query: `h(canonical text)`.
    ///
    /// Pure and allocation-free (the canonical text is memoized on the
    /// query), but always recomputes the SHA-1. Hot paths inside the
    /// service use [`cached_key`](Self::cached_key) instead.
    pub fn key_of(query: &Query) -> Key {
        Key::hash_of(query.canonical_text())
    }

    /// The DHT key of a query, interned: the SHA-1 is computed on the first
    /// sighting of each distinct query and served from the `query → key`
    /// table afterwards. The table caches a pure function of the query's
    /// canonical text, so entries can never go stale.
    pub fn cached_key(&mut self, query: &Query) -> Key {
        if let Some(k) = self.key_cache.get(query) {
            return *k;
        }
        let k = Key::hash_of(query.canonical_text());
        self.key_cache.insert(query.clone(), k);
        k
    }

    /// Decodes the values returned by a `Get` through the intern table:
    /// each distinct wire value is parsed once, after which decoding is a
    /// hash probe plus a cheap clone. This is the lookup hot path — every
    /// query resolution decodes a handful of stored values, and most of
    /// them recur across lookups.
    fn decode_targets(&mut self, values: Vec<Bytes>) -> Result<Vec<IndexTarget>, IndexError> {
        let mut out = Vec::with_capacity(values.len());
        for bytes in values {
            let target = match self.decode_cache.get(&bytes) {
                Some(t) => t.clone(),
                None => {
                    let t = IndexTarget::from_bytes(&bytes)?;
                    self.decode_cache.insert(bytes, t.clone());
                    t
                }
            };
            out.push(target);
        }
        Ok(out)
    }

    /// The underlying DHT (read-only).
    pub fn dht(&self) -> &D {
        &self.dht
    }

    /// The underlying DHT (mutable — e.g. for churn experiments).
    pub fn dht_mut(&mut self) -> &mut D {
        &mut self.dht
    }

    /// The active cache policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Accumulated traffic counters.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// How many lookups each node has served (the Fig. 15 hot-spot data).
    pub fn node_query_counts(&self) -> &HashMap<NodeId, u64> {
        &self.node_queries
    }

    /// Per-node shortcut-cache sizes, for every live node (zero when a node
    /// has never cached anything).
    pub fn cache_sizes(&self) -> Vec<(NodeId, usize)> {
        self.dht
            .nodes()
            .into_iter()
            .map(|n| (n, self.caches.get(&n).map_or(0, ShortcutCache::len)))
            .collect()
    }

    /// Fraction of node caches that are at capacity / completely empty
    /// (`(full, empty)`), over all live nodes.
    pub fn cache_fill_fractions(&self) -> (f64, f64) {
        let nodes = self.dht.nodes();
        if nodes.is_empty() {
            return (0.0, 0.0);
        }
        let mut full = 0usize;
        let mut empty = 0usize;
        for n in &nodes {
            match self.caches.get(n) {
                Some(c) if c.is_full() => full += 1,
                Some(c) if c.is_empty() => empty += 1,
                None => empty += 1,
                _ => {}
            }
        }
        (
            full as f64 / nodes.len() as f64,
            empty as f64 / nodes.len() as f64,
        )
    }

    /// Zeroes the traffic and per-node counters (cache contents are kept).
    pub fn reset_metrics(&mut self) {
        self.traffic = Traffic::new();
        self.node_queries.clear();
    }

    /// Publishes a file: stores it under its MSD key and installs all index
    /// edges produced by `scheme`. Returns the MSD.
    ///
    /// The file entry and every index edge are independent `Put`s, so the
    /// whole publication goes to the substrate as **one**
    /// [`Dht::execute_many`] wave — on a networked substrate that is one
    /// pipelined frame pair instead of a round trip per edge, the same
    /// batching win the multi-get lookup path gets.
    ///
    /// # Errors
    ///
    /// [`IndexError::EmptyNetwork`] without live nodes;
    /// [`IndexError::NotCovering`] if the scheme emits an edge `(from, to)`
    /// with `from ⋣ to` — every edge is validated up front, before any
    /// insert is issued, so a non-covering scheme publishes nothing at all.
    /// DHT faults surface as the first failed op's error; the other ops in
    /// the wave were still attempted (and retried) independently.
    pub fn publish(
        &mut self,
        descriptor: &Descriptor,
        file: impl Into<String>,
        scheme: &dyn IndexScheme,
    ) -> Result<Query, IndexError> {
        if self.dht.is_empty() {
            return Err(IndexError::EmptyNetwork);
        }
        let msd = Query::most_specific(descriptor);
        let edges = scheme.index_edges(descriptor, &msd);
        for (from, to) in &edges {
            if !from.covers(to) {
                return Err(IndexError::NotCovering {
                    from: from.to_string(),
                    to: to.to_string(),
                });
            }
        }
        let mut ops = Vec::with_capacity(1 + edges.len());
        let msd_key = self.cached_key(&msd);
        let file_value = self.encode_target(&IndexTarget::File(file.into()));
        ops.push(DhtOp::Put {
            key: msd_key,
            value: file_value,
        });
        // Most schemes terminate several chains at the MSD, so the encoded
        // `Query(msd)` value is shared across those edges (a `Bytes` clone
        // is a refcount bump) instead of re-encoded per edge.
        let mut msd_value: Option<Bytes> = None;
        for (from, to) in edges {
            let from_key = self.cached_key(&from);
            let value = if to == msd {
                match &msd_value {
                    Some(v) => v.clone(),
                    None => {
                        let v = self.encode_target(&IndexTarget::Query(to));
                        msd_value = Some(v.clone());
                        v
                    }
                }
            } else {
                self.encode_target(&IndexTarget::Query(to))
            };
            ops.push(DhtOp::Put {
                key: from_key,
                value,
            });
        }
        for result in self.dht_execute_many(ops) {
            result?;
        }
        self.metrics.incr("index.publish");
        Ok(msd)
    }

    /// Installs one query-to-query mapping `(from ; to)`.
    ///
    /// This is also how the paper's manual "short-circuit" entries are
    /// created — e.g. `(q₆ ; d₁)` to speed up access to a popular file.
    ///
    /// # Errors
    ///
    /// [`IndexError::NotCovering`] unless `from ⊒ to`.
    pub fn insert_mapping(&mut self, from: Query, to: Query) -> Result<(), IndexError> {
        if !from.covers(&to) {
            return Err(IndexError::NotCovering {
                from: from.to_string(),
                to: to.to_string(),
            });
        }
        let from_key = self.cached_key(&from);
        let value = self.encode_target(&IndexTarget::Query(to));
        self.dht_execute(DhtOp::Put {
            key: from_key,
            value,
        })?;
        Ok(())
    }

    /// One user-system interaction: asks the node responsible for `h(q)`
    /// what it knows about `q`.
    ///
    /// The node answers **cache-first**: if its adaptive cache holds a
    /// shortcut for `q` it returns just that (the §IV-C "jump") — this is
    /// what lets popular lookups skip the long regular result lists and
    /// makes the cache *save* bandwidth (Fig. 12). When the shortcut does
    /// not lead to the data the user wants, the follow-up
    /// [`lookup_step_bypassing_cache`](Self::lookup_step_bypassing_cache)
    /// fetches the regular entries (more traffic, but the same logical
    /// user-system interaction).
    ///
    /// Counts node load and normal traffic.
    ///
    /// # Errors
    ///
    /// [`IndexError::EmptyNetwork`] without live nodes; [`IndexError::Decode`]
    /// if a stored entry is corrupt.
    pub fn lookup_step(&mut self, query: &Query) -> Result<StepResponse, IndexError> {
        self.traced_lookup(query, true)
    }

    /// Like [`lookup_step`](Self::lookup_step), but skips the node's
    /// shortcut cache and returns the regular index entries — the
    /// follow-up a user sends when cached shortcuts did not lead to the
    /// data they were after.
    ///
    /// # Errors
    ///
    /// [`IndexError::EmptyNetwork`] without live nodes; [`IndexError::Decode`]
    /// if a stored entry is corrupt.
    pub fn lookup_step_bypassing_cache(
        &mut self,
        query: &Query,
    ) -> Result<StepResponse, IndexError> {
        self.traced_lookup(query, false)
    }

    /// Wraps one lookup in a trace span (when tracing is active) around
    /// the shared implementation.
    fn traced_lookup(
        &mut self,
        query: &Query,
        use_cache: bool,
    ) -> Result<StepResponse, IndexError> {
        if self.tracer.is_some() {
            let label = format!("lookup {query}");
            if let Some(t) = &mut self.tracer {
                t.open(label);
            }
        }
        let result = self.lookup_inner(query, use_cache);
        if let Some(t) = &mut self.tracer {
            match &result {
                Ok(resp) => t.event(format!(
                    "returned {} cached + {} indexed target(s)",
                    resp.cached.len(),
                    resp.indexed.len()
                )),
                Err(e) => t.event(format!("failed: {e}")),
            }
            t.close();
        }
        result
    }

    /// The lookup shared by both public entry points. With `use_cache`
    /// the serving node answers cache-first (and the probe is counted);
    /// without it the node's shortcut cache is skipped entirely.
    fn lookup_inner(&mut self, query: &Query, use_cache: bool) -> Result<StepResponse, IndexError> {
        let key = self.cached_key(query);
        let node = self
            .dht_execute(DhtOp::NodeFor(key))?
            .into_node()
            .ok_or(IndexError::EmptyNetwork)?;
        *self.node_queries.entry(node).or_insert(0) += 1;
        if let Some(t) = &mut self.tracer {
            t.event(format!("served by {node}"));
        }

        let cached: Vec<IndexTarget> = if use_cache {
            self.metrics.incr("index.lookups.cached");
            let hit = self
                .caches
                .get_mut(&node)
                .and_then(|c| c.get(&key))
                .map(<[IndexTarget]>::to_vec)
                .unwrap_or_default();
            // A node that never cached anything still answers the probe:
            // count it as a miss so hit + miss == cached-mode lookups.
            if hit.is_empty() {
                self.metrics.incr("index.cache_probe.miss");
                if let Some(t) = &mut self.tracer {
                    t.event("cache probe: miss".to_string());
                }
            } else {
                self.metrics.incr("index.cache_probe.hit");
                if let Some(t) = &mut self.tracer {
                    t.event(format!("cache probe: hit ({} shortcut(s))", hit.len()));
                }
            }
            hit
        } else {
            self.metrics.incr("index.lookups.bypass");
            Vec::new()
        };

        let indexed: Vec<IndexTarget> = if cached.is_empty() {
            let values = self.dht_execute(DhtOp::Get(key))?.into_values();
            self.decode_targets(values)?
        } else {
            Vec::new()
        };

        let request = query.canonical_text().len() as u64;
        let response: u64 = cached
            .iter()
            .chain(indexed.iter())
            .map(|t| t.encoded_len() as u64)
            .sum();
        self.traffic.record_exchange(request, response);

        Ok(StepResponse {
            node: Some(node),
            cached,
            indexed,
        })
    }

    /// Batched sibling of
    /// [`lookup_step_bypassing_cache`](Self::lookup_step_bypassing_cache):
    /// resolves and fetches several independent queries through one
    /// [`Dht::execute_many`] wave — the multi-get fast path taken by all
    /// the child queries referenced from one resolved index node. On a
    /// networked substrate the whole wave costs one pipelined frame pair
    /// per routed member instead of two frames per query. Results are
    /// positional.
    ///
    /// While a trace is recording this falls back to per-query traced
    /// lookups, so every query keeps its own `lookup …` span (the
    /// invariant the observability suite pins). Single-query batches take
    /// the batched path too: on the networked client that pipelines the
    /// probe through `execute_many` like every other generalization wave
    /// instead of issuing a sequentially-dependent unary exchange.
    fn lookup_many_bypassing_cache(
        &mut self,
        queries: &[Query],
    ) -> Vec<Result<StepResponse, IndexError>> {
        if self.tracer.is_some() || queries.is_empty() {
            return queries
                .iter()
                .map(|q| self.lookup_step_bypassing_cache(q))
                .collect();
        }
        let keys: Vec<Key> = queries.iter().map(|q| self.cached_key(q)).collect();
        // Interleave [NodeFor, Get] per query — the op order the unary
        // sequence would issue. Fault injectors draw per-op randomness in
        // op order, so this keeps batched and unary runs comparable.
        let mut ops = Vec::with_capacity(keys.len() * 2);
        for key in &keys {
            ops.push(DhtOp::NodeFor(*key));
            ops.push(DhtOp::Get(*key));
        }
        let mut raw = self.dht_execute_many(ops).into_iter();
        let mut out = Vec::with_capacity(queries.len());
        for query in queries {
            let node_result = raw.next().expect("one NodeFor result per query");
            let get_result = raw.next().expect("one Get result per query");
            out.push(self.assemble_bypass_lookup(query, node_result, get_result));
        }
        out
    }

    /// Reassembles one query's [`StepResponse`] from its batched
    /// NodeFor/Get results, with side effects (node load, bypass metrics,
    /// traffic accounting) identical to [`lookup_inner`](Self::lookup_inner)
    /// without a cache probe.
    fn assemble_bypass_lookup(
        &mut self,
        query: &Query,
        node_result: Result<DhtResponse, DhtError>,
        get_result: Result<DhtResponse, DhtError>,
    ) -> Result<StepResponse, IndexError> {
        let node = node_result?.into_node().ok_or(IndexError::EmptyNetwork)?;
        *self.node_queries.entry(node).or_insert(0) += 1;
        self.metrics.incr("index.lookups.bypass");
        let indexed: Vec<IndexTarget> = self.decode_targets(get_result?.into_values())?;
        let request = query.canonical_text().len() as u64;
        let response: u64 = indexed.iter().map(|t| t.encoded_len() as u64).sum();
        self.traffic.record_exchange(request, response);
        Ok(StepResponse {
            node: Some(node),
            cached: Vec::new(),
            indexed,
        })
    }

    /// Creates shortcut cache entries for a successful lookup, following
    /// the configured policy (§IV-C / §V-D):
    ///
    /// * `Multi` — on every `(node, query)` step of `path`;
    /// * `Single` / `Lru(k)` — only on the first node contacted;
    /// * `None` — nowhere.
    ///
    /// Steps whose query *is* the target are skipped (a shortcut from the
    /// MSD to itself would be useless). Returns the number of entries
    /// created; each creation is accounted as cache traffic.
    pub fn create_shortcuts(&mut self, path: &[(NodeId, Query)], target: &IndexTarget) -> usize {
        if !self.policy.caches() {
            return 0;
        }
        let steps: &[(NodeId, Query)] = if self.policy.caches_whole_path() {
            path
        } else {
            path.get(..1.min(path.len())).unwrap_or(&[])
        };
        let mut created = 0;
        for (node, query) in steps {
            if Some(query) == target.as_query() {
                continue;
            }
            let key = self.cached_key(query);
            let policy = self.policy;
            let metrics = &self.metrics;
            let admission = self.cache_admission;
            let cache = self.caches.entry(*node).or_insert_with(|| {
                let mut cache = ShortcutCache::for_policy(policy).with_metrics(metrics.clone());
                cache.set_admission_threshold(admission);
                cache
            });
            if cache.insert(key, target.clone()) {
                self.traffic.record_cache_update(
                    (query.canonical_text().len() + target.encoded_len()) as u64,
                );
                created += 1;
                if let Some(t) = &mut self.tracer {
                    t.event(format!("shortcut installed at {node} for {query}"));
                }
            }
        }
        created
    }

    /// Automated search (§IV-B): recursively explores the indexes and
    /// returns *all* files matching `query`.
    ///
    /// If the query is not indexed anywhere, the service generalizes it —
    /// dropping predicates breadth-first until an indexed ancestor is found
    /// — and then specializes back down, filtering results against the
    /// original query (§V "locating non-indexed data"). Found files always
    /// satisfy the original query; the extra lookups are reported in
    /// [`SearchReport::generalization_steps`].
    ///
    /// This method neither creates nor consults cache shortcuts: automated
    /// exhaustive search must see the full index (shortcuts only cover
    /// previously-searched files) and its results therefore never depend on
    /// cache state. Interactive callers that want adaptive caching drive
    /// [`lookup_step`](Self::lookup_step) and
    /// [`create_shortcuts`](Self::create_shortcuts) directly (as the
    /// simulator and [`SearchSession`](crate::SearchSession) do).
    ///
    /// # Errors
    ///
    /// [`IndexError::EmptyNetwork`] without live nodes; [`IndexError::Decode`]
    /// on corrupt entries. Sub-lookups that fail with a DHT fault even
    /// after the retry policy was exhausted do **not** abort the search:
    /// the branch is abandoned, recorded in
    /// [`SearchReport::completeness`], and the remaining branches are
    /// still explored — a degraded-but-useful answer instead of an error.
    pub fn search(&mut self, query: &Query) -> Result<SearchReport, IndexError> {
        if self.tracer.is_some() {
            let label = format!("search {query}");
            if let Some(t) = &mut self.tracer {
                t.open(label);
            }
        }
        self.metrics.incr("index.searches");
        let result = self.search_inner(query);
        if let Ok(report) = &result {
            self.metrics
                .add("index.search.interactions", u64::from(report.interactions));
            self.metrics.add(
                "index.search.generalization_steps",
                u64::from(report.generalization_steps),
            );
            self.metrics.add(
                "index.search.abandoned",
                u64::from(report.completeness.abandoned),
            );
            self.metrics.observe(
                "search.interactions_per_query",
                u64::from(report.interactions),
            );
            self.metrics
                .observe("search.files_per_query", report.files.len() as u64);
        }
        if let Some(t) = &mut self.tracer {
            match &result {
                Ok(r) => t.event(format!(
                    "result: {} file(s), {} interaction(s), {} generalization step(s){}",
                    r.files.len(),
                    r.interactions,
                    r.generalization_steps,
                    if r.is_partial() { ", partial" } else { "" }
                )),
                Err(e) => t.event(format!("failed: {e}")),
            }
            t.close();
        }
        result
    }

    fn search_inner(&mut self, query: &Query) -> Result<SearchReport, IndexError> {
        // The BFS state lives in service-owned scratch buffers so repeated
        // searches reuse their allocations instead of growing fresh
        // sets/queues per query. Taken out for the duration of the search
        // (the buffers hold no borrows) and put back even on error.
        let mut scratch = std::mem::take(&mut self.search_scratch);
        let result = self.search_with_scratch(query, &mut scratch);
        scratch.clear();
        self.search_scratch = scratch;
        result
    }

    fn search_with_scratch(
        &mut self,
        query: &Query,
        scratch: &mut SearchScratch,
    ) -> Result<SearchReport, IndexError> {
        let retry_before = self.retry_stats;
        let mut report = SearchReport::default();
        let SearchScratch {
            visited,
            queue,
            seen,
            frontier,
            level,
            children,
        } = scratch;

        // Phase 1: find indexed entry points — the query itself, or
        // (for non-indexed queries) its generalizations, breadth-first.
        // An abandoned first lookup reads as "not indexed": generalization
        // may still reach the data through another index branch.
        let first = self
            .lookup_or_abandon(query, &mut report)?
            .unwrap_or_default();
        let query_not_indexed = first.indexed.is_empty();
        visited.insert(query.clone());
        queue.push_back((query.clone(), first));
        if query_not_indexed {
            query.generalizations_into(frontier);
            // Each generalization level is a wave of independent probes:
            // the whole level goes through one batched multi-get (one
            // pipelined frame pair per routed member on a networked
            // substrate) and the replies are consumed in chain order, so
            // the first indexed ancestor found is the same one the
            // one-probe-at-a-time loop would have entered through.
            'generalize: while !frontier.is_empty() {
                level.clear();
                for g in frontier.drain(..) {
                    if seen.insert(g.clone()) {
                        level.push(g);
                    }
                }
                for g in level.iter() {
                    report.generalization_steps += 1;
                    report.interactions += 1;
                    if let Some(t) = &mut self.tracer {
                        t.event(format!("generalize -> {g}"));
                    }
                }
                let results = self.lookup_many_bypassing_cache(level);
                for (g, result) in level.iter().zip(results) {
                    let resp = match result {
                        Ok(resp) => resp,
                        Err(IndexError::Dht(_)) => {
                            report.completeness.abandoned += 1;
                            g.generalizations_into(frontier);
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    if resp.indexed.is_empty() {
                        g.generalizations_into(frontier);
                    } else if visited.insert(g.clone()) {
                        queue.push_back((g.clone(), resp));
                        break 'generalize;
                    }
                }
            }
        }

        // Phase 2: breadth-first specialization over index entries. All
        // the fresh child queries referenced by one index node are
        // independent, so they are fetched through one batched multi-get
        // per dequeued node instead of one RPC pair per child.
        while let Some((current, resp)) = queue.pop_front() {
            children.clear();
            for target in resp.all_targets() {
                match target {
                    IndexTarget::File(f) => {
                        // `current` is the MSD the file is stored under; it
                        // matches the original query iff the query covers it.
                        if query.covers(&current) {
                            let hit = FileHit {
                                msd: current.clone(),
                                file: f.clone(),
                            };
                            if !report.files.contains(&hit) {
                                report.files.push(hit);
                            }
                        }
                    }
                    IndexTarget::Query(q) => {
                        if visited.insert(q.clone()) {
                            children.push(q.clone());
                        }
                    }
                }
            }
            if children.is_empty() {
                continue;
            }
            report.interactions += children.len() as u32;
            let results = self.lookup_many_bypassing_cache(children);
            for (child, result) in children.drain(..).zip(results) {
                match result {
                    Ok(r) => queue.push_back((child, r)),
                    Err(IndexError::Dht(_)) => report.completeness.abandoned += 1,
                    Err(e) => return Err(e),
                }
            }
        }

        let delta = self.retry_stats;
        report.completeness.attempts = delta.attempts - retry_before.attempts;
        report.completeness.retries = delta.retries - retry_before.retries;
        report.completeness.backoff_ms = delta.backoff_ms - retry_before.backoff_ms;
        Ok(report)
    }

    /// One search sub-lookup: `Ok(None)` when the lookup failed with a DHT
    /// fault and the branch must be abandoned; hard errors still propagate.
    fn lookup_or_abandon(
        &mut self,
        query: &Query,
        report: &mut SearchReport,
    ) -> Result<Option<StepResponse>, IndexError> {
        report.interactions += 1;
        match self.lookup_step_bypassing_cache(query) {
            Ok(resp) => Ok(Some(resp)),
            Err(IndexError::Dht(_)) => {
                report.completeness.abandoned += 1;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Removes a published file and cleans up after it: the file entry is
    /// deleted, then index mappings whose target key no longer holds any
    /// entry are removed, cascading up the hierarchy until a fixpoint
    /// ("when deleting the last mapping for a given key, we can recursively
    /// delete the references to that key", §IV-C). Shortcut-cache entries
    /// pointing at the deleted MSD are purged as well.
    ///
    /// Returns the MSD the file was stored under.
    ///
    /// # Errors
    ///
    /// [`IndexError::EmptyNetwork`] without live nodes.
    pub fn unpublish(
        &mut self,
        descriptor: &Descriptor,
        file: &str,
        scheme: &dyn IndexScheme,
    ) -> Result<Query, IndexError> {
        if self.dht.is_empty() {
            return Err(IndexError::EmptyNetwork);
        }
        let msd = Query::most_specific(descriptor);
        let msd_key = self.cached_key(&msd);
        self.dht_execute(DhtOp::Remove {
            key: msd_key,
            value: IndexTarget::File(file.to_string()).to_bytes(),
        })?;

        let edges = scheme.index_edges(descriptor, &msd);
        loop {
            let mut changed = false;
            for (from, to) in &edges {
                let to_key = self.cached_key(to);
                if self
                    .dht_execute(DhtOp::Get(to_key))?
                    .into_values()
                    .is_empty()
                {
                    let entry = IndexTarget::Query(to.clone()).to_bytes();
                    let from_key = self.cached_key(from);
                    if self
                        .dht_execute(DhtOp::Remove {
                            key: from_key,
                            value: entry,
                        })?
                        .into_removed()
                    {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Purge dangling shortcuts.
        let dangling = IndexTarget::Query(msd.clone());
        for cache in self.caches.values_mut() {
            cache.purge_target(&dangling);
        }
        self.metrics.incr("index.unpublish");
        Ok(msd)
    }
}

/// A short human-readable rendering of a DHT response for trace events.
fn describe_response(resp: &DhtResponse) -> String {
    match resp {
        DhtResponse::Node(n) => n.to_string(),
        DhtResponse::Stored(new) => format!("stored (new: {new})"),
        DhtResponse::Values(v) => format!("{} value(s)", v.len()),
        DhtResponse::Removed(found) => format!("removed (found: {found})"),
    }
}

#[cfg(test)]
mod tests {
    use p2p_index_dht::RingDht;

    use super::*;
    use crate::scheme::{FlatScheme, SimpleScheme};

    fn descriptor(first: &str, last: &str, title: &str, conf: &str, year: &str) -> Descriptor {
        Descriptor::parse(&format!(
            "<article><author><first>{first}</first><last>{last}</last></author>\
             <title>{title}</title><conf>{conf}</conf><year>{year}</year></article>"
        ))
        .unwrap()
    }

    fn service(policy: CachePolicy) -> IndexService<RingDht> {
        IndexService::new(RingDht::with_named_nodes(64), policy)
    }

    fn publish_figure1<D: Dht>(s: &mut IndexService<D>, scheme: &dyn IndexScheme) {
        s.publish(
            &descriptor("John", "Smith", "TCP", "SIGCOMM", "1989"),
            "x.pdf",
            scheme,
        )
        .unwrap();
        s.publish(
            &descriptor("John", "Smith", "IPv6", "INFOCOM", "1996"),
            "y.pdf",
            scheme,
        )
        .unwrap();
        s.publish(
            &descriptor("Alan", "Doe", "Wavelets", "INFOCOM", "1996"),
            "z.pdf",
            scheme,
        )
        .unwrap();
    }

    #[test]
    fn publish_and_search_by_author() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let report = s
            .search(&"/article/author[first/John][last/Smith]".parse().unwrap())
            .unwrap();
        let mut files: Vec<&str> = report.files.iter().map(|h| h.file.as_str()).collect();
        files.sort();
        assert_eq!(files, vec!["x.pdf", "y.pdf"]);
        assert!(!report.generalized());
        assert!(report.interactions >= 3);
    }

    #[test]
    fn search_by_conference() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let report = s.search(&"/article/conf/INFOCOM".parse().unwrap()).unwrap();
        let mut files: Vec<&str> = report.files.iter().map(|h| h.file.as_str()).collect();
        files.sort();
        assert_eq!(files, vec!["y.pdf", "z.pdf"]);
    }

    #[test]
    fn search_via_msd_fetches_file_directly() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let d = descriptor("John", "Smith", "TCP", "SIGCOMM", "1989");
        let msd = Query::most_specific(&d);
        let report = s.search(&msd).unwrap();
        assert_eq!(report.files.len(), 1);
        assert_eq!(report.files[0].file, "x.pdf");
        assert_eq!(report.interactions, 1);
    }

    #[test]
    fn search_unmatched_query_finds_nothing() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let report = s
            .search(&"/article/author/last/Nobody".parse().unwrap())
            .unwrap();
        assert!(report.files.is_empty());
    }

    #[test]
    fn non_indexed_query_recovers_via_generalization() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        // author+year is indexed by no scheme: recoverable error.
        let q: Query = "/article[author[first/John][last/Smith]][year/1996]"
            .parse()
            .unwrap();
        let report = s.search(&q).unwrap();
        assert!(report.generalized());
        assert_eq!(report.files.len(), 1);
        assert_eq!(report.files[0].file, "y.pdf");
    }

    #[test]
    fn generalization_filters_by_original_query() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        // John Smith published in 1989 only x.pdf; generalizing to the
        // author index must not leak the 1996 paper.
        let q: Query = "/article[author[first/John][last/Smith]][year/1989]"
            .parse()
            .unwrap();
        let report = s.search(&q).unwrap();
        assert_eq!(report.files.len(), 1);
        assert_eq!(report.files[0].file, "x.pdf");
    }

    #[test]
    fn flat_scheme_needs_fewer_interactions() {
        let mut simple = service(CachePolicy::None);
        publish_figure1(&mut simple, &SimpleScheme);
        let mut flat = service(CachePolicy::None);
        publish_figure1(&mut flat, &FlatScheme);
        let q: Query = "/article/author[first/Alan][last/Doe]".parse().unwrap();
        let rs = simple.search(&q).unwrap();
        let rf = flat.search(&q).unwrap();
        assert_eq!(rs.files, rf.files);
        assert!(rf.interactions < rs.interactions);
    }

    #[test]
    fn insert_mapping_rejects_non_covering() {
        let mut s = service(CachePolicy::None);
        let err = s
            .insert_mapping(
                "/article/title/TCP".parse().unwrap(),
                "/article/title/IPv6".parse().unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, IndexError::NotCovering { .. }));
        assert!(err.to_string().contains("covering"));
    }

    #[test]
    fn manual_short_circuit_entry() {
        // The paper's (q6; d1) example: a direct link from a broad query to
        // a popular file's MSD.
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let d = descriptor("John", "Smith", "TCP", "SIGCOMM", "1989");
        let msd = Query::most_specific(&d);
        let q6: Query = "/article/author/last/Smith".parse().unwrap();
        s.insert_mapping(q6.clone(), msd.clone()).unwrap();
        let resp = s.lookup_step(&q6).unwrap();
        assert!(resp.indexed.contains(&IndexTarget::Query(msd)));
    }

    #[test]
    fn empty_network_errors() {
        let mut s = IndexService::new(RingDht::new(), CachePolicy::None);
        let d = descriptor("A", "B", "T", "C", "2000");
        assert_eq!(
            s.publish(&d, "f", &SimpleScheme).unwrap_err(),
            IndexError::EmptyNetwork
        );
        assert_eq!(
            s.lookup_step(&"/article".parse().unwrap()).unwrap_err(),
            IndexError::EmptyNetwork
        );
        assert_eq!(
            s.unpublish(&d, "f", &SimpleScheme).unwrap_err(),
            IndexError::EmptyNetwork
        );
    }

    #[test]
    fn lookup_counts_node_load_and_traffic() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        s.reset_metrics();
        let q: Query = "/article/author/last/Smith".parse().unwrap();
        s.lookup_step(&q).unwrap();
        assert_eq!(s.node_query_counts().values().sum::<u64>(), 1);
        assert!(s.traffic().normal_bytes > 0);
        assert_eq!(s.traffic().cache_bytes, 0);
    }

    #[test]
    fn shortcuts_single_policy_first_node_only() {
        let mut s = service(CachePolicy::Single);
        publish_figure1(&mut s, &SimpleScheme);
        let q1: Query = "/article/conf/INFOCOM".parse().unwrap();
        let q2: Query = "/article[conf/INFOCOM][year/1996]".parse().unwrap();
        let n1 = s
            .dht()
            .owner(&IndexService::<RingDht>::key_of(&q1))
            .unwrap();
        let n2 = s
            .dht()
            .owner(&IndexService::<RingDht>::key_of(&q2))
            .unwrap();
        let msd = Query::most_specific(&descriptor("Alan", "Doe", "Wavelets", "INFOCOM", "1996"));
        let target = IndexTarget::Query(msd);
        let created = s.create_shortcuts(&[(n1, q1.clone()), (n2, q2.clone())], &target);
        assert_eq!(created, 1);
        // Only the first node caches.
        let resp = s.lookup_step(&q1).unwrap();
        assert_eq!(resp.cached, vec![target]);
        let resp2 = s.lookup_step(&q2).unwrap();
        assert!(resp2.cached.is_empty());
    }

    #[test]
    fn shortcuts_multi_policy_whole_path() {
        let mut s = service(CachePolicy::Multi);
        publish_figure1(&mut s, &SimpleScheme);
        let q1: Query = "/article/conf/INFOCOM".parse().unwrap();
        let q2: Query = "/article[conf/INFOCOM][year/1996]".parse().unwrap();
        let n1 = s
            .dht()
            .owner(&IndexService::<RingDht>::key_of(&q1))
            .unwrap();
        let n2 = s
            .dht()
            .owner(&IndexService::<RingDht>::key_of(&q2))
            .unwrap();
        let msd = Query::most_specific(&descriptor("Alan", "Doe", "Wavelets", "INFOCOM", "1996"));
        let target = IndexTarget::Query(msd);
        let created = s.create_shortcuts(&[(n1, q1.clone()), (n2, q2.clone())], &target);
        assert_eq!(created, 2);
        assert!(!s.lookup_step(&q1).unwrap().cached.is_empty());
        assert!(!s.lookup_step(&q2).unwrap().cached.is_empty());
        assert!(s.traffic().cache_bytes > 0);
    }

    #[test]
    fn shortcut_skips_target_query_step() {
        let mut s = service(CachePolicy::Multi);
        publish_figure1(&mut s, &SimpleScheme);
        let msd = Query::most_specific(&descriptor("John", "Smith", "TCP", "SIGCOMM", "1989"));
        let n = s
            .dht()
            .owner(&IndexService::<RingDht>::key_of(&msd))
            .unwrap();
        let created = s.create_shortcuts(&[(n, msd.clone())], &IndexTarget::Query(msd));
        assert_eq!(created, 0);
    }

    #[test]
    fn no_cache_policy_creates_nothing() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let q: Query = "/article/conf/INFOCOM".parse().unwrap();
        let n = s.dht().owner(&IndexService::<RingDht>::key_of(&q)).unwrap();
        let created = s.create_shortcuts(&[(n, q)], &IndexTarget::File("z.pdf".into()));
        assert_eq!(created, 0);
        assert_eq!(s.traffic().cache_bytes, 0);
    }

    #[test]
    fn unpublish_removes_file_and_cascades() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let d1 = descriptor("John", "Smith", "TCP", "SIGCOMM", "1989");
        s.unpublish(&d1, "x.pdf", &SimpleScheme).unwrap();

        // x.pdf is gone; y.pdf still reachable through the shared author path.
        let by_author = s
            .search(&"/article/author[first/John][last/Smith]".parse().unwrap())
            .unwrap();
        let files: Vec<&str> = by_author.files.iter().map(|h| h.file.as_str()).collect();
        assert_eq!(files, vec!["y.pdf"]);

        // The title chain for TCP is fully cleaned up.
        let by_title = s.search(&"/article/title/TCP".parse().unwrap()).unwrap();
        assert!(by_title.files.is_empty());
        let resp = s
            .lookup_step(&"/article/title/TCP".parse().unwrap())
            .unwrap();
        assert!(resp.is_empty(), "dangling title entry should be removed");

        // SIGCOMM/1989 chain also cleaned (only x.pdf used it).
        let resp = s
            .lookup_step(&"/article/conf/SIGCOMM".parse().unwrap())
            .unwrap();
        assert!(resp.is_empty());
        // INFOCOM chain untouched.
        let resp = s
            .lookup_step(&"/article/conf/INFOCOM".parse().unwrap())
            .unwrap();
        assert!(!resp.is_empty());
    }

    #[test]
    fn unpublish_purges_dangling_shortcuts() {
        let mut s = service(CachePolicy::Single);
        publish_figure1(&mut s, &SimpleScheme);
        let d1 = descriptor("John", "Smith", "TCP", "SIGCOMM", "1989");
        let msd = Query::most_specific(&d1);
        let q: Query = "/article/title/TCP".parse().unwrap();
        let n = s.dht().owner(&IndexService::<RingDht>::key_of(&q)).unwrap();
        s.create_shortcuts(&[(n, q.clone())], &IndexTarget::Query(msd));
        assert!(!s.lookup_step(&q).unwrap().cached.is_empty());
        s.unpublish(&d1, "x.pdf", &SimpleScheme).unwrap();
        assert!(s.lookup_step(&q).unwrap().cached.is_empty());
    }

    #[test]
    fn republish_is_idempotent() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let before = s.dht().total_keys();
        publish_figure1(&mut s, &SimpleScheme);
        assert_eq!(s.dht().total_keys(), before);
    }

    #[test]
    fn cache_sizes_and_fractions() {
        let mut s = service(CachePolicy::Lru(10));
        publish_figure1(&mut s, &SimpleScheme);
        let (full, empty) = s.cache_fill_fractions();
        assert_eq!(full, 0.0);
        assert_eq!(empty, 1.0);
        let q: Query = "/article/conf/INFOCOM".parse().unwrap();
        let n = s.dht().owner(&IndexService::<RingDht>::key_of(&q)).unwrap();
        s.create_shortcuts(&[(n, q)], &IndexTarget::File("z.pdf".into()));
        let sizes = s.cache_sizes();
        assert_eq!(sizes.iter().map(|(_, c)| c).sum::<usize>(), 1);
        let (_, empty) = s.cache_fill_fractions();
        assert!(empty < 1.0);
    }

    // ---- faults, retries, and completeness ----------------------------

    use p2p_index_dht::{FaultConfig, FaultyDht};

    /// A populated service over a faulty ring: published while healthy,
    /// faults switched on afterwards.
    fn faulty_service(loss: f64, retry: RetryPolicy) -> IndexService<FaultyDht<RingDht>> {
        let dht = FaultyDht::transparent(RingDht::with_named_nodes(64));
        let mut s = IndexService::with_retry(dht, CachePolicy::None, retry);
        publish_figure1(&mut s, &SimpleScheme);
        s.dht_mut().set_fault_config(FaultConfig::lossy(11, loss));
        s
    }

    #[test]
    fn healthy_service_reports_full_completeness() {
        let mut s = service(CachePolicy::None);
        publish_figure1(&mut s, &SimpleScheme);
        let report = s.search(&"/article/conf/INFOCOM".parse().unwrap()).unwrap();
        let c = report.completeness;
        assert!(!report.is_partial());
        assert_eq!(c.retries, 0);
        assert_eq!(c.abandoned, 0);
        assert_eq!(c.backoff_ms, 0);
        assert!(c.attempts > 0, "every sub-lookup is a DHT attempt");
        assert_eq!(s.sim_clock_ms(), 0);
    }

    #[test]
    fn retries_recover_from_message_loss() {
        let mut s = faulty_service(0.3, RetryPolicy::with_budget(21, 10));
        let report = s
            .search(&"/article/author[first/John][last/Smith]".parse().unwrap())
            .unwrap();
        let mut files: Vec<&str> = report.files.iter().map(|h| h.file.as_str()).collect();
        files.sort();
        assert_eq!(files, vec!["x.pdf", "y.pdf"]);
        assert!(!report.is_partial(), "{:?}", report.completeness);
        assert!(
            report.completeness.retries > 0,
            "30% loss must cost retries"
        );
        assert!(report.completeness.backoff_ms > 0);
        assert_eq!(s.sim_clock_ms(), s.retry_stats().backoff_ms);
    }

    #[test]
    fn exhausted_budget_marks_results_partial() {
        let mut s = faulty_service(1.0, RetryPolicy::with_budget(3, 2));
        let report = s.search(&"/article/conf/INFOCOM".parse().unwrap()).unwrap();
        assert!(report.files.is_empty(), "total loss finds nothing");
        assert!(report.is_partial());
        assert!(report.completeness.abandoned >= 1);
        assert!(report.completeness.retries > 0);
        assert!(s.retry_stats().gave_up > 0);
    }

    #[test]
    fn publish_surfaces_exhausted_dht_faults() {
        let dht = FaultyDht::new(RingDht::with_named_nodes(16), FaultConfig::lossy(5, 1.0));
        let mut s =
            IndexService::with_retry(dht, CachePolicy::None, RetryPolicy::with_budget(5, 2));
        let d = descriptor("A", "B", "T", "C", "2000");
        assert_eq!(
            s.publish(&d, "f.pdf", &SimpleScheme).unwrap_err(),
            IndexError::Dht(p2p_index_dht::DhtError::Timeout)
        );
        let stats = s.retry_stats();
        // Publish issues its whole put wave as one batch; under total loss
        // every op in the wave burns its own retry budget (one MSD put plus
        // one put per index edge).
        let msd = Query::most_specific(&d);
        let puts = 1 + SimpleScheme.index_edges(&d, &msd).len() as u64;
        assert_eq!(
            stats.attempts,
            2 * puts,
            "budget of 2 means exactly 2 attempts per batched op"
        );
        assert_eq!(stats.retries, puts);
        assert_eq!(stats.gave_up, puts);
    }

    #[test]
    fn set_retry_policy_reseeds_jitter() {
        let mut s = faulty_service(0.5, RetryPolicy::with_budget(33, 4));
        let q: Query = "/article/conf/INFOCOM".parse().unwrap();
        let first = s.search(&q).unwrap().completeness;
        // Re-arm both the fault stream and the retry jitter, then replay.
        s.dht_mut().set_fault_config(FaultConfig::lossy(11, 0.5));
        s.set_retry_policy(RetryPolicy::with_budget(33, 4));
        let second = s.search(&q).unwrap().completeness;
        assert_eq!(first, second, "same seeds must replay the same search");
    }

    #[test]
    fn search_explores_past_abandoned_branches() {
        // Even when some sub-lookups die, search keeps walking the other
        // branches and reports what it could reach.
        let mut s = faulty_service(0.6, RetryPolicy::with_budget(17, 2));
        let report = s.search(&"/article/conf/INFOCOM".parse().unwrap()).unwrap();
        // Whatever was found must genuinely match the query.
        for hit in &report.files {
            assert!(["y.pdf", "z.pdf"].contains(&hit.file.as_str()));
        }
        if report.files.len() < 2 {
            assert!(
                report.is_partial(),
                "missing files must be flagged: {report:?}"
            );
        }
    }
}
