//! The index layer over the full Chord protocol, under churn.
//!
//! The paper stresses that its indexes run "on top of an arbitrary P2P DHT
//! infrastructure" and inherit the substrate's failure handling. This
//! example layers `IndexService` over the real Chord simulation — routed
//! lookups, finger tables, stabilization — publishes a library, then joins
//! and removes nodes mid-operation and shows searches keep resolving.
//!
//! Run with: `cargo run --example chord_churn`

use p2p_index::dht::{ChordConfig, ChordNetwork, Dht, Key};
use p2p_index::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-node Chord ring with 3-way replication: enough to survive the
    // abrupt failures below without losing index entries.
    let ids = (0..64).map(|i| Key::hash_of(&format!("peer-{i}")));
    let chord = ChordNetwork::with_perfect_tables_and_config(
        ids,
        ChordConfig {
            replication: 3,
            ..ChordConfig::default()
        },
    );
    let mut service = IndexService::new(chord, CachePolicy::None);

    let corpus = Corpus::generate(CorpusConfig {
        articles: 120,
        author_pool: 40,
        seed: 3,
        ..CorpusConfig::default()
    });
    for article in corpus.articles() {
        service.publish(&article.descriptor(), article.file_name(), &SimpleScheme)?;
    }
    let stats = service.dht().stats();
    println!(
        "published {} articles over Chord: {} routed lookups, {:.2} mean hops",
        corpus.len(),
        stats.lookups,
        stats.mean_hops()
    );

    let target = corpus.article(0).expect("non-empty corpus");
    let (first, last) = target.primary_author();
    let query: Query = QueryBuilder::new("article")
        .value("author/first", first)
        .value("author/last", last)
        .build();

    let before = service.search(&query)?;
    println!("before churn: {} file(s) for {query}", before.files.len());
    assert!(!before.files.is_empty());

    // Churn: five newcomers join, five members leave gracefully, three die.
    // The failures are spread around the ring: successor-list replication
    // tolerates independent failures, not the loss of `replication`
    // *consecutive* nodes (which would wipe out a whole replica set).
    let bootstrap = service.dht().nodes()[0];
    for i in 0..5 {
        service
            .dht_mut()
            .join(NodeId::hash_of(&format!("newcomer-{i}")), bootstrap)?;
    }
    let members = service.dht().nodes();
    for node in members.iter().skip(10).take(5) {
        service.dht_mut().leave(*node)?;
    }
    for node in [members[20], members[35], members[50]] {
        service.dht_mut().fail(node)?;
    }
    let rounds = service.dht_mut().converge(100);
    let repaired = service.dht_mut().repair_replication();
    println!(
        "churn applied (+5 joins, -5 leaves, -3 failures); ring re-converged in {rounds} \
         maintenance rounds, {} nodes live, {repaired} replica copies repaired",
        service.dht().len()
    );

    let after = service.search(&query)?;
    println!("after churn:  {} file(s) for {query}", after.files.len());
    assert_eq!(
        before.files.len(),
        after.files.len(),
        "no data lost under churn"
    );

    // Every article is still reachable through its title index.
    let mut located = 0;
    for article in corpus.articles() {
        let q = QueryBuilder::new("article")
            .value("title", &article.title)
            .build();
        if service
            .search(&q)?
            .files
            .iter()
            .any(|h| h.file == article.file_name())
        {
            located += 1;
        }
    }
    println!(
        "post-churn title searches located {located}/{} articles",
        corpus.len()
    );
    assert_eq!(located, corpus.len());
    Ok(())
}
