//! Property tests on the query language itself: parser totality, canonical
//! stability, and structural invariants of normalization.

use p2p_index_xpath::{parse_query, Axis, CmpOp, Query, QueryBuilder};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("author/first".to_string()),
        Just("author/last".to_string()),
        Just("title".to_string()),
        Just("conf".to_string()),
        Just("year".to_string()),
        Just("journal/volume".to_string()),
    ]
}

fn arb_value() -> impl Strategy<Value = String> {
    prop_oneof![
        "[A-Za-z][A-Za-z0-9]{0,10}",
        "[0-9]{1,4}",
        // Values needing quoting.
        "[A-Za-z]{1,5} [A-Za-z]{1,5}",
        "[A-Za-z]{1,3}\"[A-Za-z]{1,3}",
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::StartsWith),
        Just(CmpOp::Contains),
    ]
}

/// Random queries through the builder (always well-formed).
fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec((arb_field(), arb_value()), 0..4),
        proptest::collection::vec((arb_field(), arb_op(), arb_value()), 0..2),
    )
        .prop_map(|(values, comparisons)| {
            let mut b = QueryBuilder::new("article");
            for (f, v) in values {
                b = b.value(&f, v);
            }
            for (f, op, v) in comparisons {
                b = b.compare(&f, op, v);
            }
            b.build()
        })
}

proptest! {
    /// The canonical text of any query parses back to the same query —
    /// the property that makes h(q) well-defined.
    #[test]
    fn canonical_text_is_stable(q in arb_query()) {
        let text = q.to_string();
        let reparsed = parse_query(&text).expect("canonical text parses");
        prop_assert_eq!(&reparsed, &q);
        prop_assert_eq!(reparsed.to_string(), text);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(s in "[ -~]{0,64}") {
        let _ = parse_query(&s);
    }

    /// Parsing whitespace-padded canonical text yields the same query.
    #[test]
    fn whitespace_insensitive(q in arb_query()) {
        let padded: String = q
            .to_string()
            .chars()
            .flat_map(|c| if c == '[' { vec!['[', ' '] } else { vec![c] })
            .collect();
        prop_assert_eq!(parse_query(&padded).expect("padded parses"), q);
    }

    /// Size and depth are consistent with the pattern structure.
    #[test]
    fn size_and_depth_bounds(q in arb_query()) {
        prop_assert!(q.size() >= 1);
        prop_assert!(q.depth() >= 1);
        prop_assert!(q.depth() <= q.size());
        // Dropping a branch strictly shrinks the size.
        for g in q.generalizations() {
            prop_assert!(g.size() < q.size());
        }
    }

    /// Normalized queries have sorted, deduplicated branches at the root.
    #[test]
    fn branches_sorted_and_unique(q in arb_query()) {
        let branches = q.top_branches();
        for w in branches.windows(2) {
            prop_assert!(w[0] < w[1], "branches must be strictly ascending");
        }
    }

    /// The root axis of builder queries is Child and the root name sticks.
    #[test]
    fn root_invariants(q in arb_query()) {
        prop_assert_eq!(q.root().axis(), Axis::Child);
        prop_assert_eq!(q.root_name(), Some("article"));
    }

    /// Following the first generalization repeatedly always terminates
    /// (size strictly decreases), and every step covers its predecessor —
    /// the property search's recovery loop relies on (§V).
    #[test]
    fn generalization_chains_terminate(q in arb_query()) {
        let bound = q.size();
        let mut current = q;
        let mut steps = 0usize;
        while let Some(g) = current.generalizations().into_iter().next() {
            prop_assert!(g.size() < current.size(), "size must strictly decrease");
            prop_assert!(g.covers(&current), "a generalization covers its origin");
            current = g;
            steps += 1;
            prop_assert!(steps <= bound, "chain longer than the size bound");
        }
        prop_assert!(current.generalizations().is_empty());
    }

    /// Breadth-first exploration of *all* generalizations (the shape of
    /// the search's recovery frontier) visits finitely many queries.
    #[test]
    fn generalization_frontier_is_finite(q in arb_query()) {
        use std::collections::{HashSet, VecDeque};
        let mut seen: HashSet<Query> = HashSet::new();
        let mut frontier: VecDeque<Query> = q.generalizations().into();
        let limit = 1usize << q.size().min(12);
        while let Some(g) = frontier.pop_front() {
            if !seen.insert(g.clone()) {
                continue;
            }
            prop_assert!(g.covers(&q));
            prop_assert!(seen.len() <= limit, "frontier blew past the 2^size bound");
            frontier.extend(g.generalizations());
        }
    }
}

/// Deterministic companions for the chain properties, on hand-picked
/// queries spanning one to three predicate branches.
#[test]
fn generalization_chain_terminates_on_fixed_queries() {
    for text in [
        "/article/year/1999",
        "/article[author[first/John][last/Smith]]",
        "/article[conf/SIGCOMM][year/1989][title/TCP]",
    ] {
        let q = parse_query(text).expect("fixed query parses");
        let bound = q.size();
        let mut current = q;
        let mut steps = 0usize;
        while let Some(g) = current.generalizations().into_iter().next() {
            assert!(g.size() < current.size(), "{text}: size must shrink");
            assert!(g.covers(&current), "{text}: covering violated");
            current = g;
            steps += 1;
            assert!(steps <= bound, "{text}: chain did not terminate");
        }
        assert!(current.generalizations().is_empty(), "{text}");
    }
}

#[test]
fn generalization_frontier_is_finite_on_fixed_query() {
    use std::collections::{HashSet, VecDeque};
    let q = parse_query("/article[author[first/John][last/Smith]][year/1989]")
        .expect("fixed query parses");
    let mut seen: HashSet<Query> = HashSet::new();
    let mut frontier: VecDeque<Query> = q.generalizations().into();
    while let Some(g) = frontier.pop_front() {
        if !seen.insert(g.clone()) {
            continue;
        }
        assert!(g.covers(&q));
        assert!(seen.len() <= 4096, "frontier must stay finite");
        frontier.extend(g.generalizations());
    }
    assert!(!seen.is_empty(), "a predicated query must generalize");
}
