//! Property tests for the wire codec.
//!
//! Two families:
//!
//! * **Roundtrip** — every [`Message`] (all `DhtOp` / `DhtResponse` /
//!   `DhtError` variants, arbitrary ids, keys, and values) survives
//!   encode → decode byte-exactly, and the decoder consumes exactly the
//!   encoded length.
//! * **Rejection** — no input makes the decoder panic: arbitrary byte
//!   soup, truncated frames at every cut point, oversized length
//!   prefixes, and wrong versions all come back as typed [`WireError`]s.
//!
//! Each property has a deterministic companion driven by a seeded
//! [`SplitMix64`] sequence, so the invariants are exercised on every test
//! run even where proptest is unavailable, and with a pinned
//! `PROPTEST_RNG_SEED` in CI.

use bytes::Bytes;
use p2p_index_dht::{DhtError, DhtOp, DhtResponse, Key, NodeId, SplitMix64};
use p2p_index_net::wire::{decode_message, encode_to_vec, HEADER_LEN, MAX_PAYLOAD};
use p2p_index_net::{Message, WireError, VERSION, VERSION_BATCH, VERSION_REPL};
use proptest::prelude::*;

/// Number of distinct shapes `rng_message` cycles through.
const VARIANTS: usize = 17;

fn rng_key(rng: &mut SplitMix64) -> Key {
    let mut digest = [0u8; 20];
    for chunk in digest.chunks_mut(8) {
        let word = rng.next_u64().to_be_bytes();
        chunk.copy_from_slice(&word[..chunk.len()]);
    }
    Key::from_digest(digest)
}

fn rng_value(rng: &mut SplitMix64) -> Bytes {
    let len = (rng.next_u64() % 50) as usize;
    Bytes::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
}

fn rng_op(rng: &mut SplitMix64, variant: usize) -> DhtOp {
    match variant % 4 {
        0 => DhtOp::NodeFor(rng_key(rng)),
        1 => DhtOp::Put {
            key: rng_key(rng),
            value: rng_value(rng),
        },
        2 => DhtOp::Get(rng_key(rng)),
        _ => DhtOp::Remove {
            key: rng_key(rng),
            value: rng_value(rng),
        },
    }
}

fn rng_result(rng: &mut SplitMix64, variant: usize) -> Result<DhtResponse, DhtError> {
    match variant % 8 {
        0 => Ok(DhtResponse::Node(NodeId::from_key(rng_key(rng)))),
        1 => Ok(DhtResponse::Stored(rng.next_u64().is_multiple_of(2))),
        2 => Ok(DhtResponse::Values(
            (0..rng.next_u64() % 5).map(|_| rng_value(rng)).collect(),
        )),
        3 => Ok(DhtResponse::Removed(rng.next_u64().is_multiple_of(2))),
        4 => Err(DhtError::Timeout),
        5 => Err(DhtError::NoLiveNodes),
        6 => Err(DhtError::StorageFull),
        _ => Err(DhtError::from_wire_code(rng.next_u64() as u16)),
    }
}

/// A message cycling through every variant, with rng-derived contents.
fn rng_message(rng: &mut SplitMix64, variant: usize) -> Message {
    let id = rng.next_u64();
    match variant % VARIANTS {
        0 => Message::Request {
            id,
            op: DhtOp::NodeFor(rng_key(rng)),
        },
        1 => Message::Request {
            id,
            op: DhtOp::Put {
                key: rng_key(rng),
                value: rng_value(rng),
            },
        },
        2 => Message::Request {
            id,
            op: DhtOp::Get(rng_key(rng)),
        },
        3 => Message::Request {
            id,
            op: DhtOp::Remove {
                key: rng_key(rng),
                value: rng_value(rng),
            },
        },
        4 => Message::Response {
            id,
            result: Ok(DhtResponse::Node(NodeId::from_key(rng_key(rng)))),
        },
        5 => Message::Response {
            id,
            result: Ok(DhtResponse::Stored(rng.next_u64().is_multiple_of(2))),
        },
        6 => Message::Response {
            id,
            result: Ok(DhtResponse::Values(
                (0..rng.next_u64() % 5).map(|_| rng_value(rng)).collect(),
            )),
        },
        7 => Message::Response {
            id,
            result: Ok(DhtResponse::Removed(rng.next_u64().is_multiple_of(2))),
        },
        8 => Message::Response {
            id,
            result: Err(DhtError::Timeout),
        },
        9 => Message::Response {
            id,
            result: Err(DhtError::NoLiveNodes),
        },
        10 => Message::Response {
            id,
            result: Err(DhtError::StorageFull),
        },
        11 => Message::Response {
            id,
            result: Err(DhtError::from_wire_code(rng.next_u64() as u16)),
        },
        12 => Message::Batch {
            id,
            ops: (0..1 + (rng.next_u64() % 4) as usize)
                .map(|i| rng_op(rng, variant + i))
                .collect(),
        },
        13 => Message::BatchReply {
            id,
            results: (0..1 + (rng.next_u64() % 4) as usize)
                .map(|i| rng_result(rng, variant + i))
                .collect(),
        },
        14 => Message::Replicate {
            id,
            op: rng_op(rng, variant),
        },
        15 => Message::Transfer {
            id,
            entries: (0..1 + (rng.next_u64() % 3) as usize)
                .map(|_| {
                    let key = rng_key(rng);
                    let values = (0..1 + (rng.next_u64() % 3) as usize)
                        .map(|_| rng_value(rng))
                        .collect();
                    (key, values)
                })
                .collect(),
        },
        _ => Message::Shutdown,
    }
}

fn assert_roundtrip(msg: &Message) {
    let buf = encode_to_vec(msg);
    let (decoded, consumed) = decode_message(&buf).expect("encoded frame must decode");
    assert_eq!(&decoded, msg);
    assert_eq!(consumed, buf.len(), "decoder must consume the whole frame");
}

/// Feeding any byte slice to the decoder must return, never panic.
fn assert_total(buf: &[u8]) {
    let _ = decode_message(buf);
}

#[test]
fn roundtrip_deterministic() {
    let mut rng = SplitMix64::new(0x5eed);
    for variant in 0..VARIANTS * 40 {
        assert_roundtrip(&rng_message(&mut rng, variant));
    }
}

#[test]
fn decoder_is_total_on_garbage_deterministic() {
    let mut rng = SplitMix64::new(0xdead);
    for _ in 0..2000 {
        let len = (rng.next_u64() % 64) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        assert_total(&buf);
    }
}

#[test]
fn decoder_is_total_on_corrupted_valid_frames_deterministic() {
    // Start from real frames and flip one byte at a time: every mutation
    // must decode to something or fail typed, never panic.
    let mut rng = SplitMix64::new(0xc0de);
    for variant in 0..VARIANTS {
        let buf = encode_to_vec(&rng_message(&mut rng, variant));
        for at in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[at] ^= 0x41;
            assert_total(&corrupted);
        }
    }
}

#[test]
fn every_truncation_is_rejected_without_panic() {
    let mut rng = SplitMix64::new(7);
    for variant in 0..VARIANTS {
        let buf = encode_to_vec(&rng_message(&mut rng, variant));
        for cut in 0..buf.len() {
            assert_eq!(
                decode_message(&buf[..cut]),
                Err(WireError::Truncated),
                "variant {variant}, prefix of {cut} bytes"
            );
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // A header whose length field claims gigabytes must fail fast on the
    // prefix alone — the payload is never read, let alone allocated.
    let mut frame = encode_to_vec(&Message::Shutdown);
    for claimed in [MAX_PAYLOAD + 1, u32::MAX / 2, u32::MAX] {
        frame[14..18].copy_from_slice(&claimed.to_be_bytes());
        assert_eq!(decode_message(&frame), Err(WireError::Oversized(claimed)));
    }
}

#[test]
fn every_foreign_version_is_rejected() {
    let good = encode_to_vec(&Message::Shutdown);
    for version in 0..=u8::MAX {
        if version == VERSION || version == VERSION_BATCH || version == VERSION_REPL {
            continue;
        }
        let mut frame = good.clone();
        frame[4] = version;
        assert_eq!(
            decode_message(&frame),
            Err(WireError::UnsupportedVersion(version))
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    // A frame whose payload outlives its message is corrupt, not padded.
    let mut rng = SplitMix64::new(11);
    for variant in 0..VARIANTS {
        let mut buf = encode_to_vec(&rng_message(&mut rng, variant));
        buf.push(0);
        let len = u32::from_be_bytes(buf[14..18].try_into().unwrap()) + 1;
        buf[14..18].copy_from_slice(&len.to_be_bytes());
        assert_eq!(decode_message(&buf), Err(WireError::TrailingBytes(1)));
    }
}

#[test]
fn unknown_error_codes_decode_as_catch_all_not_failure() {
    for code in [4u16, 100, u16::MAX] {
        let msg = Message::Response {
            id: 1,
            result: Err(DhtError::from_wire_code(code)),
        };
        let buf = encode_to_vec(&msg);
        let (decoded, _) = decode_message(&buf).expect("unknown codes are data, not errors");
        assert_eq!(
            decoded,
            Message::Response {
                id: 1,
                result: Err(DhtError::Unknown(code)),
            }
        );
    }
}

/// Hand-assembles a frame with the given header fields and payload.
fn raw_frame(version: u8, kind: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(b"PDHT");
    frame.push(version);
    frame.push(kind);
    frame.extend_from_slice(&id.to_be_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

#[test]
fn empty_batches_are_rejected() {
    // count == 0 is not a no-op, it's a protocol violation: a frame
    // carrying no work should never have been sent.
    for kind in [0x05u8, 0x06] {
        let frame = raw_frame(VERSION_BATCH, kind, 7, &0u32.to_be_bytes());
        assert!(
            matches!(decode_message(&frame), Err(WireError::BadPayload(_))),
            "kind 0x{kind:02x}"
        );
    }
}

#[test]
fn oversized_batch_count_is_rejected_before_allocation() {
    // A batch claiming u32::MAX ops in a 4-byte payload must fail on
    // arithmetic alone — Vec::with_capacity never sees attacker numbers.
    for kind in [0x05u8, 0x06] {
        let frame = raw_frame(VERSION_BATCH, kind, 7, &u32::MAX.to_be_bytes());
        assert_eq!(
            decode_message(&frame),
            Err(WireError::Truncated),
            "kind 0x{kind:02x}"
        );
    }
}

#[test]
fn empty_transfers_are_rejected() {
    // Like empty batches: a transfer carrying nothing, or an entry
    // carrying no values, is a protocol violation — not a no-op.
    let frame = raw_frame(VERSION_REPL, 0x08, 7, &0u32.to_be_bytes());
    assert!(matches!(
        decode_message(&frame),
        Err(WireError::BadPayload(_))
    ));
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.extend_from_slice(Key::hash_of("k").as_bytes());
    payload.extend_from_slice(&0u32.to_be_bytes());
    let frame = raw_frame(VERSION_REPL, 0x08, 7, &payload);
    assert!(matches!(
        decode_message(&frame),
        Err(WireError::BadPayload(_))
    ));
}

#[test]
fn oversized_transfer_counts_are_rejected_before_allocation() {
    // Entry and value counts claiming more than the payload can hold must
    // fail on arithmetic alone, like oversized batch counts.
    let frame = raw_frame(VERSION_REPL, 0x08, 7, &u32::MAX.to_be_bytes());
    assert_eq!(decode_message(&frame), Err(WireError::Truncated));
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.extend_from_slice(Key::hash_of("k").as_bytes());
    payload.extend_from_slice(&u32::MAX.to_be_bytes());
    let frame = raw_frame(VERSION_REPL, 0x08, 7, &payload);
    assert_eq!(decode_message(&frame), Err(WireError::Truncated));
}

#[test]
fn transfer_cut_at_every_byte_is_truncated() {
    // Same invariant as batches: a transfer whose entries outrun its
    // payload is Truncated at every cut point, never a phantom shorter
    // transfer.
    let mut rng = SplitMix64::new(23);
    let msg = Message::Transfer {
        id: 9,
        entries: vec![
            (rng_key(&mut rng), vec![rng_value(&mut rng)]),
            (
                rng_key(&mut rng),
                vec![rng_value(&mut rng), rng_value(&mut rng)],
            ),
        ],
    };
    let buf = encode_to_vec(&msg);
    for cut in HEADER_LEN..buf.len() {
        let mut frame = buf[..cut].to_vec();
        let len = (cut - HEADER_LEN) as u32;
        frame[14..18].copy_from_slice(&len.to_be_bytes());
        assert_eq!(
            decode_message(&frame),
            Err(WireError::Truncated),
            "payload cut to {} bytes",
            cut - HEADER_LEN
        );
    }
}

#[test]
fn batch_cut_at_every_byte_is_truncated() {
    // Shrink a valid batch payload byte by byte, fixing up the length
    // header so the *frame* stays self-consistent: a batch whose ops
    // outrun its payload is Truncated at every cut point, never a
    // phantom shorter batch.
    let mut rng = SplitMix64::new(21);
    let msg = Message::Batch {
        id: 9,
        ops: vec![rng_op(&mut rng, 1), rng_op(&mut rng, 3)],
    };
    let buf = encode_to_vec(&msg);
    for cut in HEADER_LEN..buf.len() {
        let mut frame = buf[..cut].to_vec();
        let len = (cut - HEADER_LEN) as u32;
        frame[14..18].copy_from_slice(&len.to_be_bytes());
        assert_eq!(
            decode_message(&frame),
            Err(WireError::Truncated),
            "payload cut to {} bytes",
            cut - HEADER_LEN
        );
    }
}

proptest! {
    /// Every request roundtrips for arbitrary ids, keys, and values.
    #[test]
    fn prop_requests_roundtrip(
        id in any::<u64>(),
        digest in proptest::array::uniform20(any::<u8>()),
        value in proptest::collection::vec(any::<u8>(), 0..200),
        which in 0usize..4,
    ) {
        let key = Key::from_digest(digest);
        let value = Bytes::from(value);
        let op = match which {
            0 => DhtOp::NodeFor(key),
            1 => DhtOp::Put { key, value },
            2 => DhtOp::Get(key),
            _ => DhtOp::Remove { key, value },
        };
        assert_roundtrip(&Message::Request { id, op });
    }

    /// Every response roundtrips, including multi-value payloads and
    /// arbitrary (known or unknown) error codes.
    #[test]
    fn prop_responses_roundtrip(
        id in any::<u64>(),
        digest in proptest::array::uniform20(any::<u8>()),
        values in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..50), 0..8),
        flag in any::<bool>(),
        code in any::<u16>(),
        which in 0usize..5,
    ) {
        let result = match which {
            0 => Ok(DhtResponse::Node(NodeId::from_key(Key::from_digest(digest)))),
            1 => Ok(DhtResponse::Stored(flag)),
            2 => Ok(DhtResponse::Values(values.into_iter().map(Bytes::from).collect())),
            3 => Ok(DhtResponse::Removed(flag)),
            _ => Err(DhtError::from_wire_code(code)),
        };
        assert_roundtrip(&Message::Response { id, result });
    }

    /// Batches and batch replies of arbitrary mixed contents roundtrip.
    #[test]
    fn prop_batches_roundtrip(
        id in any::<u64>(),
        seed in any::<u64>(),
        count in 1usize..6,
    ) {
        let mut rng = SplitMix64::new(seed);
        let ops: Vec<DhtOp> = (0..count).map(|i| rng_op(&mut rng, i)).collect();
        assert_roundtrip(&Message::Batch { id, ops });
        let mut rng = SplitMix64::new(seed ^ 0xb17c4);
        let results: Vec<Result<DhtResponse, DhtError>> =
            (0..count).map(|i| rng_result(&mut rng, i)).collect();
        assert_roundtrip(&Message::BatchReply { id, results });
    }

    /// The decoder is total: arbitrary byte soup never panics.
    #[test]
    fn prop_decoder_is_total(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
        assert_total(&buf);
    }

    /// Any prefix of any valid frame is Truncated — there is no cut point
    /// that yields a different error or a phantom message.
    #[test]
    fn prop_prefixes_truncate(seed in any::<u64>(), variant in 0usize..VARIANTS) {
        let mut rng = SplitMix64::new(seed);
        let buf = encode_to_vec(&rng_message(&mut rng, variant));
        for cut in 0..buf.len() {
            prop_assert_eq!(decode_message(&buf[..cut]), Err(WireError::Truncated));
        }
    }
}

#[test]
fn header_len_is_frame_minimum() {
    // The shortest possible frame is a bare header (shutdown).
    assert_eq!(encode_to_vec(&Message::Shutdown).len(), HEADER_LEN);
}
