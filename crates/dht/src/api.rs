//! The substrate-agnostic DHT interface the indexing layer builds on.
//!
//! The paper stresses that its indexing techniques "can be layered on top of
//! an arbitrary P2P DHT infrastructure". [`Dht`] captures exactly the two
//! services the indexes need — key→node resolution and multi-value
//! key→value storage — so the index layer compiles against this trait and
//! runs unchanged over the full [Chord](crate::chord) protocol simulation or
//! the fast [consistent-hash ring](crate::ring).

use std::fmt;

use bytes::Bytes;
use p2p_index_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};

use crate::key::Key;

/// Identifier of a peer node.
///
/// In Chord, node identifiers live in the same 160-bit circle as data keys;
/// a node is responsible for every key in `(predecessor, self]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(Key);

impl NodeId {
    /// Wraps a raw key as a node identifier.
    pub fn from_key(key: Key) -> NodeId {
        NodeId(key)
    }

    /// Derives a node identifier by hashing a node name (e.g. an address).
    pub fn hash_of(name: &str) -> NodeId {
        NodeId(Key::hash_of(name))
    }

    /// The position of this node on the identifier circle.
    pub fn key(&self) -> &Key {
        &self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Node{:?}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", &self.0.to_hex()[..12])
    }
}

impl From<Key> for NodeId {
    fn from(key: Key) -> Self {
        NodeId(key)
    }
}

/// Counters describing the work a substrate performed.
///
/// `messages` counts simulated network messages (RPC request/response pairs
/// count as two); `lookups` counts key resolutions; `hops` accumulates
/// routing hops so `hops / lookups` is the mean path length — for Chord this
/// should concentrate around `½·log₂(N)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DhtStats {
    /// Total simulated messages exchanged.
    pub messages: u64,
    /// Total key lookups performed.
    pub lookups: u64,
    /// Total routing hops across all lookups.
    pub hops: u64,
}

impl DhtStats {
    /// Mean hops per lookup, or 0.0 when no lookup happened.
    pub fn mean_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hops as f64 / self.lookups as f64
        }
    }
}

/// A single DHT operation, the request half of the wire protocol.
///
/// Every mutation and lookup the index layer issues is expressed as one of
/// these, so a wrapper substrate (e.g. [`FaultyDht`](crate::faulty::FaultyDht))
/// can intercept, drop, or retry whole operations uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhtOp {
    /// Resolve the node responsible for a key.
    NodeFor(Key),
    /// Register a value under a key (multi-value, duplicates suppressed).
    Put {
        /// Storage key.
        key: Key,
        /// Value to register.
        value: Bytes,
    },
    /// Fetch every value registered under a key.
    Get(Key),
    /// Remove one specific value registered under a key.
    Remove {
        /// Storage key.
        key: Key,
        /// Exact value to remove.
        value: Bytes,
    },
}

impl DhtOp {
    /// The key this operation addresses.
    pub fn key(&self) -> &Key {
        match self {
            DhtOp::NodeFor(key) | DhtOp::Get(key) => key,
            DhtOp::Put { key, .. } | DhtOp::Remove { key, .. } => key,
        }
    }

    /// A stable short name for this operation kind, used as a metrics
    /// label suffix (`dht.ops.put`) and in trace events.
    pub fn kind(&self) -> &'static str {
        match self {
            DhtOp::NodeFor(_) => "node_for",
            DhtOp::Put { .. } => "put",
            DhtOp::Get(_) => "get",
            DhtOp::Remove { .. } => "remove",
        }
    }
}

/// The response half of the wire protocol: one variant per [`DhtOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhtResponse {
    /// Answer to [`DhtOp::NodeFor`].
    Node(NodeId),
    /// Answer to [`DhtOp::Put`]: `true` if the value was newly stored.
    Stored(bool),
    /// Answer to [`DhtOp::Get`].
    Values(Vec<Bytes>),
    /// Answer to [`DhtOp::Remove`]: `true` if the value was present.
    Removed(bool),
}

impl DhtResponse {
    /// Unwraps a [`DhtResponse::Node`], or `None` for other variants.
    pub fn into_node(self) -> Option<NodeId> {
        match self {
            DhtResponse::Node(n) => Some(n),
            _ => None,
        }
    }

    /// Unwraps a [`DhtResponse::Stored`] flag (`false` for other variants).
    pub fn into_stored(self) -> bool {
        matches!(self, DhtResponse::Stored(true))
    }

    /// Unwraps [`DhtResponse::Values`] (empty for other variants).
    pub fn into_values(self) -> Vec<Bytes> {
        match self {
            DhtResponse::Values(v) => v,
            _ => Vec::new(),
        }
    }

    /// Unwraps a [`DhtResponse::Removed`] flag (`false` for other variants).
    pub fn into_removed(self) -> bool {
        matches!(self, DhtResponse::Removed(true))
    }
}

/// Why a DHT operation failed.
///
/// Real substrates lose messages and churn nodes; this is the error surface
/// the index layer programs against. [`DhtError::is_transient`] separates
/// faults worth retrying (a lost message) from structural conditions that a
/// retry cannot fix.
///
/// Each variant has a stable wire code (see [`DhtError::wire_code`]) so
/// the error surface can cross process boundaries; the enum is
/// `#[non_exhaustive]` and codes this build does not know decode into the
/// [`DhtError::Unknown`] catch-all instead of a decode failure, so old
/// clients keep working against newer servers.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DhtError {
    /// The request or response message was lost; the operation may or may
    /// not have taken effect on the responsible node.
    Timeout,
    /// The network has no live node to serve the operation.
    NoLiveNodes,
    /// The responsible node refused the write for lack of space.
    StorageFull,
    /// An error code from a newer peer that this build cannot interpret.
    /// Carries the raw wire code so it can be logged and re-encoded
    /// losslessly.
    Unknown(u16),
}

impl DhtError {
    /// Wire code of [`DhtError::Timeout`].
    pub const CODE_TIMEOUT: u16 = 1;
    /// Wire code of [`DhtError::NoLiveNodes`].
    pub const CODE_NO_LIVE_NODES: u16 = 2;
    /// Wire code of [`DhtError::StorageFull`].
    pub const CODE_STORAGE_FULL: u16 = 3;

    /// `true` for faults a retry may fix (currently only [`DhtError::Timeout`]).
    /// Unknown codes are treated as permanent: retrying an error we cannot
    /// interpret risks spinning against a structural condition.
    pub fn is_transient(&self) -> bool {
        matches!(self, DhtError::Timeout)
    }

    /// The stable 16-bit code this error travels as on the wire.
    pub fn wire_code(&self) -> u16 {
        match self {
            DhtError::Timeout => Self::CODE_TIMEOUT,
            DhtError::NoLiveNodes => Self::CODE_NO_LIVE_NODES,
            DhtError::StorageFull => Self::CODE_STORAGE_FULL,
            DhtError::Unknown(code) => *code,
        }
    }

    /// Decodes a wire code; codes this build does not know become
    /// [`DhtError::Unknown`] (never a failure), so the codec stays
    /// forward-compatible with future error variants.
    pub fn from_wire_code(code: u16) -> DhtError {
        match code {
            Self::CODE_TIMEOUT => DhtError::Timeout,
            Self::CODE_NO_LIVE_NODES => DhtError::NoLiveNodes,
            Self::CODE_STORAGE_FULL => DhtError::StorageFull,
            other => DhtError::Unknown(other),
        }
    }
}

impl fmt::Display for DhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhtError::Timeout => write!(f, "operation timed out (message lost)"),
            DhtError::NoLiveNodes => write!(f, "no live nodes in the network"),
            DhtError::StorageFull => write!(f, "responsible node storage full"),
            DhtError::Unknown(code) => write!(f, "unrecognized error code {code} from peer"),
        }
    }
}

impl std::error::Error for DhtError {}

/// A peer-to-peer distributed hash table with multi-value storage.
///
/// This is the contract assumed in §III-A of the paper: "each data item is
/// mapped to one or several peer nodes" and the storage system must "allow
/// for the registration of multiple entries using the same key".
///
/// [`Dht::execute`] is the fallible entry point every operation ultimately
/// goes through; `put`/`remove` are infallible convenience wrappers over it,
/// while `node_for`/`get` keep their historical `&self` signatures (shared
/// read paths must stay usable across threads) and report failure through
/// their return values (`None` / empty).
///
/// Implementations in this crate:
/// [`ChordNetwork`](crate::chord::ChordNetwork),
/// [`KademliaNetwork`](crate::kademlia::KademliaNetwork) and
/// [`PastryNetwork`](crate::pastry::PastryNetwork) (protocol simulations),
/// [`RingDht`](crate::ring::RingDht) (direct consistent hashing), and
/// [`FaultyDht`](crate::faulty::FaultyDht) (fault-injecting wrapper over any
/// of them).
pub trait Dht {
    /// Executes one operation, reporting faults instead of swallowing them.
    ///
    /// This is the single fallible entry point: wrappers inject faults here
    /// and the index layer retries here. The infallible convenience methods
    /// below are defined in terms of it.
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError>;

    /// Executes a batch of *independent* operations, returning one result
    /// per op in the same order.
    ///
    /// This is the batch-first entry point the index layer's multi-get
    /// fast path is written against: a resolved index node's children are
    /// all independent keys, so they can travel to the substrate together.
    /// The default loops over [`Dht::execute`], which makes every
    /// substrate (including fault-injecting wrappers, whose per-op RNG
    /// draw order must not change) conform with semantics identical to
    /// the equivalent unary sequence. Networked substrates override this
    /// to pipeline: one frame pair per routed member instead of one per
    /// op.
    fn execute_many(&mut self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        ops.into_iter().map(|op| self.execute(op)).collect()
    }

    /// Resolves the live node currently responsible for `key`.
    ///
    /// Returns `None` only when the network has no live nodes.
    fn node_for(&self, key: &Key) -> Option<NodeId>;

    /// All live nodes, in ascending identifier order.
    fn nodes(&self) -> Vec<NodeId>;

    /// Fetches every value registered under `key`.
    fn get(&self, key: &Key) -> Vec<Bytes>;

    /// Registers `value` under `key` on the responsible node.
    ///
    /// Multiple distinct values may be registered under one key; duplicates
    /// are ignored. Returns `true` if the value was newly stored.
    /// Infallible wrapper over [`Dht::execute`]: any fault reads as "not
    /// stored".
    fn put(&mut self, key: Key, value: Bytes) -> bool {
        self.execute(DhtOp::Put { key, value })
            .map(DhtResponse::into_stored)
            .unwrap_or(false)
    }

    /// Removes one specific value under `key`. Returns `true` if present.
    /// Infallible wrapper over [`Dht::execute`].
    fn remove(&mut self, key: &Key, value: &[u8]) -> bool {
        self.execute(DhtOp::Remove {
            key: *key,
            value: Bytes::copy_from_slice(value),
        })
        .map(DhtResponse::into_removed)
        .unwrap_or(false)
    }

    /// A snapshot of every `(key, values)` entry the substrate holds, in
    /// ascending key order with duplicate replica copies collapsed.
    ///
    /// This is the enumeration surface replication maintenance needs: a
    /// networked server drains its partition to successors on graceful
    /// leave and pushes under-replicated entries during a repair pass by
    /// walking exactly this list. It is a maintenance API, not a query
    /// path — no messages or lookups are accounted.
    ///
    /// Default: empty, for substrates that cannot enumerate their
    /// storage; drain and repair degrade to no-ops over them.
    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        Vec::new()
    }

    /// Work counters accumulated since construction.
    fn stats(&self) -> DhtStats;

    /// Attaches a metrics registry; subsequent [`Dht::execute`] calls
    /// record per-operation counters (`dht.ops.*`, `dht.messages`,
    /// `dht.lookups`, `dht.hops`, `dht.errors`) into it.
    ///
    /// Default: no-op, so substrates outside this crate keep compiling
    /// and a disabled registry costs nothing on the hot path.
    fn set_metrics(&mut self, _metrics: MetricsRegistry) {}

    /// Number of live nodes.
    fn len(&self) -> usize {
        self.nodes().len()
    }

    /// Returns `true` if the network has no live nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Records one executed operation into `metrics` from the substrate's
/// own stats delta — the registry never counts independently, it only
/// mirrors the accounting the substrate already keeps, which is what
/// makes `registry["dht.messages"] == stats().messages` an invariant
/// rather than a coincidence.
///
/// Callers snapshot [`Dht::stats`] before and after the operation and
/// pass both; `kind` comes from [`DhtOp::kind`].
pub fn record_op(
    metrics: &MetricsRegistry,
    kind: &'static str,
    before: DhtStats,
    after: DhtStats,
    result: &Result<DhtResponse, DhtError>,
) {
    metrics.incr("dht.ops");
    metrics.incr(&format!("dht.ops.{kind}"));
    metrics.add("dht.messages", after.messages - before.messages);
    metrics.add("dht.lookups", after.lookups - before.lookups);
    metrics.add("dht.hops", after.hops - before.hops);
    if after.lookups > before.lookups {
        metrics.observe("dht.hops_per_op", after.hops - before.hops);
    }
    if result.is_err() {
        metrics.incr("dht.errors");
    }
}

/// Records an executed batch into `metrics` from the substrate's
/// aggregate stats delta, the batch-shaped sibling of [`record_op`].
///
/// Per-op counters (`dht.ops`, `dht.ops.{kind}`, `dht.errors`) are
/// attributed exactly; the work counters (`dht.messages`, `dht.lookups`,
/// `dht.hops`) are mirrored as one aggregate delta because a pipelined
/// batch cannot attribute them per op. The `dht.hops_per_op` histogram is
/// *not* fed here for the same reason — substrates that loop over
/// [`Dht::execute`] (the trait default) keep per-op recording and never
/// reach this helper.
pub fn record_many(
    metrics: &MetricsRegistry,
    kinds: &[&'static str],
    before: DhtStats,
    after: DhtStats,
    results: &[Result<DhtResponse, DhtError>],
) {
    for (kind, result) in kinds.iter().zip(results) {
        metrics.incr("dht.ops");
        metrics.incr(&format!("dht.ops.{kind}"));
        if result.is_err() {
            metrics.incr("dht.errors");
        }
    }
    metrics.add("dht.messages", after.messages - before.messages);
    metrics.add("dht.lookups", after.lookups - before.lookups);
    metrics.add("dht.hops", after.hops - before.hops);
}

/// Substrate-level membership control, used by fault injection to model
/// node churn uniformly across substrates.
///
/// `spawn`/`kill` change membership only; substrates with routing state may
/// need [`NodeChurn::stabilize`] afterwards to restore their invariants
/// (successor lists, leaf sets, replica placement).
pub trait NodeChurn {
    /// Adds a live node. Returns `false` if it was already present or the
    /// substrate cannot bootstrap it (e.g. protocol join into an empty net).
    fn spawn(&mut self, id: NodeId) -> bool;

    /// Removes a live node abruptly (a crash, not a graceful leave).
    /// Returns `false` if the node was not present.
    fn kill(&mut self, id: NodeId) -> bool;

    /// Repairs routing and replication state after membership changes.
    /// Default: no-op, for substrates whose state is always consistent.
    fn stabilize(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_wraps_key() {
        let k = Key::hash_of("peer-1");
        let n = NodeId::from_key(k);
        assert_eq!(n.key(), &k);
        assert_eq!(NodeId::hash_of("peer-1"), n);
        assert_eq!(NodeId::from(k), n);
    }

    #[test]
    fn node_id_display_is_short_hex() {
        let n = NodeId::hash_of("peer-1");
        let text = n.to_string();
        assert!(text.starts_with("node:"));
        assert_eq!(text.len(), "node:".len() + 12);
    }

    #[test]
    fn op_key_addresses_every_variant() {
        let k = Key::hash_of("k");
        let v = Bytes::from_static(b"v");
        assert_eq!(DhtOp::NodeFor(k).key(), &k);
        assert_eq!(DhtOp::Get(k).key(), &k);
        assert_eq!(
            DhtOp::Put {
                key: k,
                value: v.clone()
            }
            .key(),
            &k
        );
        assert_eq!(DhtOp::Remove { key: k, value: v }.key(), &k);
    }

    #[test]
    fn response_accessors() {
        let n = NodeId::hash_of("n");
        assert_eq!(DhtResponse::Node(n).into_node(), Some(n));
        assert_eq!(DhtResponse::Stored(true).into_node(), None);
        assert!(DhtResponse::Stored(true).into_stored());
        assert!(!DhtResponse::Stored(false).into_stored());
        assert!(!DhtResponse::Removed(true).into_stored());
        assert!(DhtResponse::Removed(true).into_removed());
        let vals = vec![Bytes::from_static(b"a")];
        assert_eq!(DhtResponse::Values(vals.clone()).into_values(), vals);
        assert!(DhtResponse::Stored(true).into_values().is_empty());
    }

    #[test]
    fn only_timeout_is_transient() {
        assert!(DhtError::Timeout.is_transient());
        assert!(!DhtError::NoLiveNodes.is_transient());
        assert!(!DhtError::StorageFull.is_transient());
        assert!(!DhtError::Unknown(42).is_transient());
        assert!(DhtError::Timeout.to_string().contains("timed out"));
    }

    #[test]
    fn wire_codes_are_stable_and_forward_compatible() {
        // Pinned codes: changing any of these breaks deployed peers.
        assert_eq!(DhtError::Timeout.wire_code(), 1);
        assert_eq!(DhtError::NoLiveNodes.wire_code(), 2);
        assert_eq!(DhtError::StorageFull.wire_code(), 3);
        for code in [1u16, 2, 3] {
            assert_eq!(DhtError::from_wire_code(code).wire_code(), code);
        }
        // Unknown codes survive a decode/encode roundtrip losslessly.
        assert_eq!(DhtError::from_wire_code(999), DhtError::Unknown(999));
        assert_eq!(DhtError::Unknown(999).wire_code(), 999);
        assert!(DhtError::Unknown(999).to_string().contains("999"));
    }

    #[test]
    fn stats_mean_hops() {
        let s = DhtStats {
            messages: 10,
            lookups: 4,
            hops: 10,
        };
        assert!((s.mean_hops() - 2.5).abs() < 1e-9);
        assert_eq!(DhtStats::default().mean_hops(), 0.0);
    }
}
