//! The synthetic bibliographic corpus.
//!
//! The paper builds its database from the DBLP archive (115 879 article
//! entries as of January 2003, §V-A) and simulates a 10 000-article subset.
//! The archive itself is not available offline, so this module generates a
//! *synthetic* corpus with the properties the evaluation actually depends
//! on (see DESIGN.md §4):
//!
//! * descriptors with exactly the Fig. 1 schema
//!   (`author/first`, `author/last`, `title`, `conf`, `year`, `size`);
//! * a power-law papers-per-author distribution (a few prolific authors,
//!   a long tail), as in DBLP;
//! * realistic-looking names, titles, and venues, so query/entry byte
//!   sizes — which drive the Fig. 12 traffic numbers — are plausible;
//! * full determinism from a seed.

use p2p_index_xmldoc::{Descriptor, Element};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One bibliographic record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Article {
    /// Corpus index; doubles as the popularity rank (0 = most popular).
    pub id: usize,
    /// `(first, last)` name pairs; at least one.
    pub authors: Vec<(String, String)>,
    /// Title text.
    pub title: String,
    /// Conference name.
    pub conf: String,
    /// Publication year.
    pub year: u32,
    /// File size in bytes (the paper estimates 250 KB per article).
    pub size: u64,
}

impl Article {
    /// The article's XML descriptor (Fig. 1 schema).
    pub fn descriptor(&self) -> Descriptor {
        let mut root = Element::new("article");
        for (first, last) in &self.authors {
            root.push_child(
                Element::new("author")
                    .with_child(Element::with_text("first", first))
                    .with_child(Element::with_text("last", last)),
            );
        }
        root.push_child(Element::with_text("title", &self.title));
        root.push_child(Element::with_text("conf", &self.conf));
        root.push_child(Element::with_text("year", self.year.to_string()));
        root.push_child(Element::with_text("size", self.size.to_string()));
        Descriptor::new(root)
    }

    /// The stored-file handle for this article.
    pub fn file_name(&self) -> String {
        format!("article-{}.pdf", self.id)
    }

    /// The first (primary) author.
    pub fn primary_author(&self) -> &(String, String) {
        &self.authors[0]
    }
}

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of articles (the paper simulates 10 000).
    pub articles: usize,
    /// Size of the author pool articles draw from.
    pub author_pool: usize,
    /// Zipf exponent of the papers-per-author distribution.
    pub author_zipf_exponent: f64,
    /// Probability that an article has a second author, third author, …
    /// (each additional author with this probability again).
    pub extra_author_prob: f64,
    /// Inclusive year range of publications.
    pub year_range: (u32, u32),
    /// Mean article file size in bytes (paper: 250 KB).
    pub mean_file_size: u64,
    /// RNG seed; every corpus is fully determined by its config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            articles: 10_000,
            author_pool: 3_300,
            author_zipf_exponent: 0.55,
            extra_author_prob: 0.0, // Fig. 1 descriptors carry one author
            year_range: (1980, 2003),
            mean_file_size: 250 * 1024,
            seed: 42,
        }
    }
}

/// The generated corpus: articles plus the author pool they draw from.
#[derive(Debug, Clone)]
pub struct Corpus {
    config: CorpusConfig,
    articles: Vec<Article>,
}

impl Corpus {
    /// Generates a corpus from `config`, deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `config.articles == 0` or `config.author_pool == 0`.
    pub fn generate(config: CorpusConfig) -> Corpus {
        assert!(config.articles > 0, "corpus must contain articles");
        assert!(config.author_pool > 0, "author pool must be non-empty");
        let mut rng = StdRng::seed_from_u64(config.seed);

        let authors: Vec<(String, String)> = (0..config.author_pool)
            .map(|i| synth_author(i, &mut rng))
            .collect();

        // Zipf CDF over the author pool: prolific authors first.
        let author_cdf = zipf_cdf(config.author_pool, config.author_zipf_exponent);

        let venues = VENUES;
        let mut articles = Vec::with_capacity(config.articles);
        for id in 0..config.articles {
            let mut article_authors = vec![authors[sample_cdf(&author_cdf, &mut rng)].clone()];
            while rng.gen_bool(config.extra_author_prob.clamp(0.0, 0.95))
                && article_authors.len() < 6
            {
                let extra = authors[sample_cdf(&author_cdf, &mut rng)].clone();
                if !article_authors.contains(&extra) {
                    article_authors.push(extra);
                }
            }
            let (y0, y1) = config.year_range;
            let year = rng.gen_range(y0..=y1.max(y0));
            // Log-normal-ish sizes around the mean.
            let factor = 0.5 + rng.gen::<f64>() + rng.gen::<f64>();
            let size = (config.mean_file_size as f64 * factor * 0.5) as u64 + 1024;
            articles.push(Article {
                id,
                authors: article_authors,
                title: synth_title(&mut rng),
                conf: venues[rng.gen_range(0..venues.len())].to_string(),
                year,
                size,
            });
        }
        Corpus { config, articles }
    }

    /// The configuration the corpus was generated from.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// All articles, ordered by id (= popularity rank).
    pub fn articles(&self) -> &[Article] {
        &self.articles
    }

    /// Number of articles.
    pub fn len(&self) -> usize {
        self.articles.len()
    }

    /// `true` if the corpus has no articles (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.articles.is_empty()
    }

    /// The article at popularity rank `id`.
    pub fn article(&self, id: usize) -> Option<&Article> {
        self.articles.get(id)
    }

    /// Total bytes of the article files themselves (the paper's 29.1 GB
    /// denominator for the index-overhead ratio).
    pub fn total_file_bytes(&self) -> u64 {
        self.articles.iter().map(|a| a.size).sum()
    }
}

/// A compact list of plausible venue names (acronym style, as in DBLP).
const VENUES: &[&str] = &[
    "SIGCOMM",
    "INFOCOM",
    "ICDCS",
    "SOSP",
    "OSDI",
    "NSDI",
    "PODC",
    "SPAA",
    "STOC",
    "FOCS",
    "SODA",
    "VLDB",
    "SIGMOD",
    "PODS",
    "ICDE",
    "WWW",
    "SIGIR",
    "KDD",
    "ICML",
    "NIPS",
    "AAAI",
    "IJCAI",
    "CHI",
    "UIST",
    "MOBICOM",
    "SENSYS",
    "EUROSYS",
    "USENIX-ATC",
    "FAST",
    "HOTOS",
    "IPTPS",
    "MIDDLEWARE",
    "ICNP",
    "IMC",
    "CONEXT",
    "CCS",
    "SP",
    "CRYPTO",
    "PLDI",
    "POPL",
];

const FIRST_NAMES: &[&str] = &[
    "John", "Alan", "Maria", "Wei", "Anna", "Luis", "Ken", "Petra", "Ion", "Sara", "David",
    "Elena", "Marc", "Yuki", "Omar", "Ivan", "Lea", "Hans", "Nina", "Paul", "Rita", "Tom", "Vera",
    "Igor", "Jane", "Karl", "Lin", "Mona", "Nils", "Olga", "Peter", "Qing", "Ralf", "Sofia", "Tim",
    "Uma", "Victor", "Wendy", "Xavier", "Yann",
];

const SURNAME_STEMS: &[&str] = &[
    "Smith", "Doe", "Garc", "Fel", "Bier", "Urv", "Ross", "Sto", "Mor", "Kar", "Bala", "Rat",
    "Hand", "Shen", "Row", "Dru", "Zha", "Kubi", "Jos", "Dab", "Kaa", "Lil", "Adj", "Schw", "Harr",
    "Hell", "Hueb", "Gupt", "Agra", "Abba", "Sah", "Coh", "Fia", "Kap", "Li", "Loo", "Karg",
    "Morr", "Mazi", "Wald",
];

const SURNAME_SUFFIXES: &[&str] = &[
    "", "son", "sen", "er", "man", "ini", "ez", "ov", "ova", "sky", "as", "is", "ung", "ara",
    "eda", "ier", "eau", "ert", "old", "wick",
];

const TITLE_OPENERS: &[&str] = &[
    "Adaptive",
    "Scalable",
    "Distributed",
    "Efficient",
    "Robust",
    "Practical",
    "Optimal",
    "Incremental",
    "Decentralized",
    "Fault-Tolerant",
    "Lightweight",
    "Secure",
    "Dynamic",
    "Hierarchical",
    "Probabilistic",
    "Self-Organizing",
];

const TITLE_SUBJECTS: &[&str] = &[
    "Routing",
    "Indexing",
    "Caching",
    "Lookup",
    "Replication",
    "Scheduling",
    "Search",
    "Storage",
    "Naming",
    "Multicast",
    "Aggregation",
    "Consensus",
    "Recovery",
    "Placement",
    "Load-Balancing",
    "Membership",
];

const TITLE_DOMAINS: &[&str] = &[
    "Peer-to-Peer Networks",
    "Overlay Networks",
    "Distributed Hash Tables",
    "Sensor Networks",
    "Wide-Area Systems",
    "Content Networks",
    "Mobile Systems",
    "Large-Scale Clusters",
    "Structured Overlays",
    "Federated Databases",
    "Wireless Meshes",
    "Storage Systems",
    "the Internet",
    "Ad-Hoc Networks",
    "Grid Systems",
    "Web Services",
];

fn synth_author(index: usize, rng: &mut StdRng) -> (String, String) {
    let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_string();
    let stem = SURNAME_STEMS[index % SURNAME_STEMS.len()];
    let suffix = SURNAME_SUFFIXES[(index / SURNAME_STEMS.len()) % SURNAME_SUFFIXES.len()];
    // Disambiguate once the stem/suffix combinations run out.
    let round = index / (SURNAME_STEMS.len() * SURNAME_SUFFIXES.len());
    let last = if round == 0 {
        format!("{stem}{suffix}")
    } else {
        format!("{stem}{suffix}-{round}")
    };
    (first, last)
}

fn synth_title(rng: &mut StdRng) -> String {
    let o = TITLE_OPENERS[rng.gen_range(0..TITLE_OPENERS.len())];
    let s = TITLE_SUBJECTS[rng.gen_range(0..TITLE_SUBJECTS.len())];
    let d = TITLE_DOMAINS[rng.gen_range(0..TITLE_DOMAINS.len())];
    format!("{o} {s} in {d}")
}

/// Cumulative Zipf distribution over `n` ranks with exponent `alpha`.
pub(crate) fn zipf_cdf(n: usize, alpha: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for i in 1..=n {
        acc += 1.0 / (i as f64).powf(alpha);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Samples an index from a CDF via binary search.
pub(crate) fn sample_cdf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("CDF has no NaN")) {
        Ok(i) | Err(i) => i.min(cdf.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig {
            articles: 500,
            author_pool: 120,
            ..Default::default()
        })
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.articles(), b.articles());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = Corpus::generate(CorpusConfig {
            articles: 500,
            author_pool: 120,
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a.articles(), b.articles());
    }

    #[test]
    fn descriptor_schema_matches_figure_1() {
        let c = small();
        let d = c.article(0).unwrap().descriptor();
        assert!(d.field("author/first").is_some());
        assert!(d.field("author/last").is_some());
        assert!(d.field("title").is_some());
        assert!(d.field("conf").is_some());
        assert!(d.field("year").is_some());
        assert!(d.field("size").is_some());
    }

    #[test]
    fn msds_are_distinct() {
        // Distinct articles must hash to distinct storage keys; titles and
        // sizes provide enough entropy.
        let c = small();
        let mut texts: Vec<String> = c
            .articles()
            .iter()
            .map(|a| a.descriptor().canonical_text())
            .collect();
        texts.sort();
        let before = texts.len();
        texts.dedup();
        assert_eq!(texts.len(), before, "duplicate descriptors in corpus");
    }

    #[test]
    fn papers_per_author_is_skewed() {
        let c = Corpus::generate(CorpusConfig {
            articles: 5_000,
            author_pool: 500,
            ..Default::default()
        });
        let mut counts: HashMap<&(String, String), usize> = HashMap::new();
        for a in c.articles() {
            *counts.entry(a.primary_author()).or_insert(0) += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Power law: the busiest author should have far more papers than
        // the median author.
        let median = sorted[sorted.len() / 2];
        assert!(
            sorted[0] > 5 * median.max(1),
            "papers-per-author not skewed: top={} median={}",
            sorted[0],
            median
        );
    }

    #[test]
    fn years_within_range() {
        let c = small();
        let (y0, y1) = c.config().year_range;
        assert!(c.articles().iter().all(|a| a.year >= y0 && a.year <= y1));
    }

    #[test]
    fn file_sizes_near_mean() {
        let c = small();
        let mean = c.total_file_bytes() / c.len() as u64;
        let target = c.config().mean_file_size;
        assert!(
            mean > target / 2 && mean < target * 2,
            "mean size {mean} too far from {target}"
        );
    }

    #[test]
    fn multi_author_generation() {
        let c = Corpus::generate(CorpusConfig {
            articles: 300,
            author_pool: 100,
            extra_author_prob: 0.6,
            ..Default::default()
        });
        assert!(c.articles().iter().any(|a| a.authors.len() > 1));
        assert!(c.articles().iter().all(|a| !a.authors.is_empty()));
    }

    #[test]
    fn file_names_unique() {
        let c = small();
        let mut names: Vec<String> = c.articles().iter().map(Article::file_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn author_pool_produces_distinct_names() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut names: Vec<String> = (0..2000).map(|i| synth_author(i, &mut rng).1).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 2000, "surnames must be unique per pool index");
    }

    #[test]
    fn zipf_cdf_properties() {
        let cdf = zipf_cdf(100, 1.0);
        assert_eq!(cdf.len(), 100);
        assert!((cdf[99] - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        // Rank 1 gets the largest mass.
        assert!(cdf[0] > 1.0 / 100.0);
    }

    #[test]
    #[should_panic(expected = "corpus must contain articles")]
    fn zero_articles_panics() {
        let _ = Corpus::generate(CorpusConfig {
            articles: 0,
            ..Default::default()
        });
    }
}
