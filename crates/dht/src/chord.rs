//! A Chord DHT protocol simulation.
//!
//! This is the substrate the paper assumes underneath its indexes
//! (Chord/DHash/CFS-style, §III-A): a ring of nodes on the 160-bit
//! identifier circle, each responsible for the keys in
//! `(predecessor, self]`, routing lookups through finger tables in
//! `O(log N)` hops.
//!
//! The whole network runs inside one process: RPCs are simulated method
//! calls that increment message/hop counters, which lets tests and benches
//! observe routing cost without sockets. The protocol itself is faithful to
//! Stoica et al. (SIGCOMM 2001): `find_successor` routes iteratively via
//! `closest_preceding_node`; ring pointers are maintained by
//! `stabilize`/`notify`/`fix_fingers`; successor lists provide fault
//! tolerance; joining nodes take over their slice of the key space from
//! their successor.
//!
//! Two construction paths are provided:
//!
//! * [`ChordNetwork::with_perfect_tables`] builds a converged ring directly
//!   (used when the ring is a means, not the object of study), and
//! * [`ChordNetwork::bootstrap`] + [`ChordNetwork::join`] +
//!   [`ChordNetwork::run_maintenance`] exercise the real join/stabilization
//!   protocol (used by the protocol tests).
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use p2p_index_dht::{ChordNetwork, Dht, Key};
//!
//! let mut net = ChordNetwork::with_perfect_tables(
//!     (0..32).map(|i| Key::hash_of(&format!("node-{i}"))),
//! );
//! let key = Key::hash_of("some data");
//! net.put(key, Bytes::from_static(b"payload"));
//! assert_eq!(net.get(&key), vec![Bytes::from_static(b"payload")]);
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use p2p_index_obs::MetricsRegistry;

use crate::api::{self, Dht, DhtError, DhtOp, DhtResponse, DhtStats, NodeChurn, NodeId};
use crate::key::{Key, KEY_BITS};
use crate::storage::NodeStore;

/// Tuning knobs for the Chord simulation.
#[derive(Debug, Clone)]
pub struct ChordConfig {
    /// Length of each node's successor list (fault tolerance).
    pub successor_list_len: usize,
    /// How many data replicas to place on the nodes succeeding the
    /// responsible node (1 = no replication). The paper notes indexes
    /// "benefit from the mechanisms implemented by the DHT substrate ...
    /// such as data replication"; this knob demonstrates that layering.
    pub replication: usize,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            successor_list_len: 4,
            replication: 1,
        }
    }
}

/// Errors returned by Chord operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChordError {
    /// The referenced node is not a live member of the network.
    UnknownNode(NodeId),
    /// A node with this identifier is already in the network.
    DuplicateNode(NodeId),
    /// The network contains no live nodes.
    EmptyNetwork,
}

impl fmt::Display for ChordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChordError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ChordError::DuplicateNode(n) => write!(f, "duplicate node {n}"),
            ChordError::EmptyNetwork => write!(f, "network has no live nodes"),
        }
    }
}

impl Error for ChordError {}

/// Per-node protocol state.
#[derive(Debug, Clone)]
struct NodeState {
    /// Predecessor pointer; `None` until learned via `notify`.
    predecessor: Option<Key>,
    /// Successor list; entry 0 is the immediate successor. Never empty.
    successors: Vec<Key>,
    /// Finger table: `fingers[i]` targets `successor(self + 2^i)`.
    fingers: Vec<Key>,
    /// Round-robin pointer for incremental `fix_fingers`.
    next_finger: usize,
    /// Local multi-value key store.
    store: NodeStore,
}

impl NodeState {
    fn solitary(id: Key) -> Self {
        NodeState {
            predecessor: None,
            successors: vec![id],
            fingers: vec![id; KEY_BITS],
            next_finger: 0,
            store: NodeStore::new(),
        }
    }
}

#[derive(Debug, Default)]
struct AtomicStats {
    messages: AtomicU64,
    lookups: AtomicU64,
    hops: AtomicU64,
}

/// The simulated Chord network: all node state plus work counters.
///
/// See the [module docs](self) for an overview and examples.
#[derive(Debug)]
pub struct ChordNetwork {
    cfg: ChordConfig,
    nodes: BTreeMap<Key, NodeState>,
    /// Sorted cache of live node identifiers (mirrors `nodes` keys).
    order: Vec<Key>,
    stats: AtomicStats,
    /// Rotates lookup origins so routed traffic spreads over the ring.
    next_origin: AtomicU64,
    metrics: MetricsRegistry,
}

impl ChordNetwork {
    /// Creates an empty network with default configuration.
    pub fn new() -> Self {
        Self::with_config(ChordConfig::default())
    }

    /// Creates an empty network with the given configuration.
    pub fn with_config(cfg: ChordConfig) -> Self {
        ChordNetwork {
            cfg,
            nodes: BTreeMap::new(),
            order: Vec::new(),
            stats: AtomicStats::default(),
            next_origin: AtomicU64::new(0),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Builds a fully converged ring over `ids` in one step.
    ///
    /// Successors, predecessors, successor lists and all finger tables are
    /// computed from the global view, as if stabilization had already run to
    /// completion. Duplicated identifiers are collapsed.
    pub fn with_perfect_tables(ids: impl IntoIterator<Item = Key>) -> Self {
        Self::with_perfect_tables_and_config(ids, ChordConfig::default())
    }

    /// [`ChordNetwork::with_perfect_tables`] with an explicit configuration.
    pub fn with_perfect_tables_and_config(
        ids: impl IntoIterator<Item = Key>,
        cfg: ChordConfig,
    ) -> Self {
        let mut net = Self::with_config(cfg);
        for id in ids {
            net.nodes
                .entry(id)
                .or_insert_with(|| NodeState::solitary(id));
        }
        net.order = net.nodes.keys().copied().collect();
        net.rebuild_all_tables();
        net
    }

    /// Recomputes every pointer from the global view (test/bench helper).
    fn rebuild_all_tables(&mut self) {
        let order = self.order.clone();
        let n = order.len();
        if n == 0 {
            return;
        }
        for (pos, id) in order.iter().enumerate() {
            let succs: Vec<Key> = (1..=self.cfg.successor_list_len.max(1))
                .map(|k| order[(pos + k) % n])
                .collect();
            let pred = order[(pos + n - 1) % n];
            let fingers: Vec<Key> = (0..KEY_BITS)
                .map(|i| Self::successor_in(&order, &id.wrapping_add(&Key::power_of_two(i))))
                .collect();
            let state = self.nodes.get_mut(id).expect("node in order cache");
            state.successors = succs;
            state.predecessor = Some(pred);
            state.fingers = fingers;
        }
    }

    /// Ground-truth successor of `key` among `sorted` ids (first id
    /// clockwise at or after `key`).
    fn successor_in(sorted: &[Key], key: &Key) -> Key {
        debug_assert!(!sorted.is_empty());
        match sorted.binary_search(key) {
            Ok(i) => sorted[i],
            Err(i) if i == sorted.len() => sorted[0],
            Err(i) => sorted[i],
        }
    }

    /// The node responsible for `key` according to the global view.
    ///
    /// This is the oracle used by tests to validate routed lookups, and by
    /// the storage API to place data once routing has been accounted.
    pub fn responsible_node(&self, key: &Key) -> Option<Key> {
        if self.order.is_empty() {
            None
        } else {
            Some(Self::successor_in(&self.order, key))
        }
    }

    /// Starts a brand-new network consisting of the single node `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ChordError::DuplicateNode`] if a node already exists.
    pub fn bootstrap(&mut self, id: NodeId) -> Result<(), ChordError> {
        let key = *id.key();
        if self.nodes.contains_key(&key) {
            return Err(ChordError::DuplicateNode(id));
        }
        self.nodes.insert(key, NodeState::solitary(key));
        let pos = self.order.binary_search(&key).unwrap_err();
        self.order.insert(pos, key);
        Ok(())
    }

    /// Joins `id` to the network via the live `bootstrap` node.
    ///
    /// The new node learns its successor through a routed lookup (counted in
    /// the stats), takes over the keys it is now responsible for, and relies
    /// on subsequent [`ChordNetwork::run_maintenance`] rounds to converge
    /// predecessor pointers, successor lists, and fingers — exactly as in
    /// the Chord paper.
    ///
    /// # Errors
    ///
    /// Returns [`ChordError::DuplicateNode`] if `id` is already present, or
    /// [`ChordError::UnknownNode`] if `bootstrap` is not live.
    pub fn join(&mut self, id: NodeId, bootstrap: NodeId) -> Result<(), ChordError> {
        let key = *id.key();
        if self.nodes.contains_key(&key) {
            return Err(ChordError::DuplicateNode(id));
        }
        if !self.nodes.contains_key(bootstrap.key()) {
            return Err(ChordError::UnknownNode(bootstrap));
        }
        let (succ, _hops) = self.find_successor_from(*bootstrap.key(), &key);

        let mut state = NodeState::solitary(key);
        state.successors = vec![succ];
        state.predecessor = None;

        // Take over (pred(successor), id] from the successor. The interval
        // bound comes from the global view so data is never stranded even if
        // the successor's predecessor pointer is momentarily stale; routing
        // correctness still depends only on protocol state.
        let lower = self.ground_truth_predecessor(&succ);
        let succ_state = self.nodes.get_mut(&succ).expect("successor is live");
        for (k, values) in succ_state.store.split_off_interval(&lower, &key) {
            for v in values {
                state.store.put(k, v);
            }
        }

        self.nodes.insert(key, state);
        let pos = self.order.binary_search(&key).unwrap_err();
        self.order.insert(pos, key);
        self.bump_messages(2); // join request + key transfer
        Ok(())
    }

    fn ground_truth_predecessor(&self, id: &Key) -> Key {
        let pos = self.order.binary_search(id).expect("live node");
        self.order[(pos + self.order.len() - 1) % self.order.len()]
    }

    /// Gracefully removes `id`: its keys move to its successor, and
    /// neighbours heal through stabilization.
    ///
    /// # Errors
    ///
    /// Returns [`ChordError::UnknownNode`] if `id` is not live.
    pub fn leave(&mut self, id: NodeId) -> Result<(), ChordError> {
        let key = *id.key();
        if !self.nodes.contains_key(&key) {
            return Err(ChordError::UnknownNode(id));
        }
        let state = self.nodes.remove(&key).expect("checked above");
        let pos = self.order.binary_search(&key).expect("order mirrors nodes");
        self.order.remove(pos);
        if let Some(succ) = self.responsible_node(&key) {
            let succ_state = self.nodes.get_mut(&succ).expect("live successor");
            for (k, values) in state.store.iter() {
                for v in values {
                    succ_state.store.put(*k, v.clone());
                }
            }
            self.bump_messages(1); // bulk key transfer
        }
        Ok(())
    }

    /// Abruptly kills `id`: its data is lost (unless replicated) and ring
    /// pointers heal only through stabilization over successor lists.
    ///
    /// # Errors
    ///
    /// Returns [`ChordError::UnknownNode`] if `id` is not live.
    pub fn fail(&mut self, id: NodeId) -> Result<(), ChordError> {
        let key = *id.key();
        if self.nodes.remove(&key).is_none() {
            return Err(ChordError::UnknownNode(id));
        }
        let pos = self.order.binary_search(&key).expect("order mirrors nodes");
        self.order.remove(pos);
        Ok(())
    }

    /// Iteratively routes a lookup for `key` starting at the live node
    /// `origin`, returning the responsible node and the hop count.
    ///
    /// Dead pointers are skipped (successor lists provide alternates); the
    /// hop count is capped at the network size as a routing-loop safeguard.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not a live node.
    pub fn find_successor_from(&self, origin: Key, key: &Key) -> (Key, u32) {
        assert!(self.nodes.contains_key(&origin), "origin must be live");
        let mut current = origin;
        let mut hops = 0u32;
        let cap = self.nodes.len() as u32 + 1;

        loop {
            let succ = self.first_live_successor(&current);
            if key.in_interval(&current, &succ) {
                self.stats.lookups.fetch_add(1, Ordering::Relaxed);
                self.stats.hops.fetch_add(hops as u64, Ordering::Relaxed);
                // Each hop is a request/response pair.
                self.bump_messages(2 * hops as u64);
                return (succ, hops);
            }
            let next = self.closest_preceding_node(&current, key);
            if next == current || hops >= cap {
                // Defensive: stale tables can stall progress mid-churn; fall
                // back to following successors, which always makes progress.
                let fallback = succ;
                if fallback == current {
                    self.stats.lookups.fetch_add(1, Ordering::Relaxed);
                    return (current, hops);
                }
                current = fallback;
            } else {
                current = next;
            }
            hops += 1;
            if hops > 4 * cap {
                // Unreachable in practice; avoid infinite loops under
                // pathological churn in tests.
                self.stats.lookups.fetch_add(1, Ordering::Relaxed);
                return (current, hops);
            }
        }
    }

    /// First live entry of `node`'s successor list (falling back to the
    /// ground-truth successor if the whole list is dead).
    fn first_live_successor(&self, node: &Key) -> Key {
        let state = &self.nodes[node];
        for s in &state.successors {
            if self.nodes.contains_key(s) {
                return *s;
            }
        }
        // Entire successor list failed: in a real deployment the node would
        // re-join; the simulation falls back to the global view.
        self.responsible_node(&node.wrapping_add(&Key::power_of_two(0)))
            .unwrap_or(*node)
    }

    /// Highest finger of `node` strictly between `node` and `key`.
    fn closest_preceding_node(&self, node: &Key, key: &Key) -> Key {
        let state = &self.nodes[node];
        for f in state.fingers.iter().rev() {
            if self.nodes.contains_key(f) && f.in_open_interval(node, key) {
                return *f;
            }
        }
        for s in state.successors.iter().rev() {
            if self.nodes.contains_key(s) && s.in_open_interval(node, key) {
                return *s;
            }
        }
        *node
    }

    /// One stabilization round on every live node: `stabilize` + `notify`
    /// + one incremental `fix_fingers` step + `check_predecessor`.
    pub fn stabilize_all(&mut self) {
        let ids: Vec<Key> = self.order.clone();
        for id in ids {
            self.stabilize_node(&id);
            self.fix_finger_step(&id);
            self.check_predecessor(&id);
        }
    }

    /// Runs `rounds` full maintenance sweeps. Each sweep also repairs whole
    /// finger tables once every `KEY_BITS` incremental steps; for fast
    /// convergence in tests use [`ChordNetwork::converge`].
    pub fn run_maintenance(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.stabilize_all();
        }
    }

    /// Runs maintenance until pointers match the global view (or `max_rounds`
    /// sweeps elapse). Returns the number of sweeps executed.
    ///
    /// A sweep fixes *all* fingers of every node, so convergence is quick;
    /// this mirrors letting the protocol run long enough in real time.
    pub fn converge(&mut self, max_rounds: usize) -> usize {
        for round in 0..max_rounds {
            self.stabilize_all();
            let ids: Vec<Key> = self.order.clone();
            for id in &ids {
                self.fix_all_fingers(id);
            }
            if self.is_converged() {
                return round + 1;
            }
        }
        max_rounds
    }

    /// Checks that every successor/predecessor pointer matches the global
    /// ring order.
    pub fn is_converged(&self) -> bool {
        let n = self.order.len();
        if n == 0 {
            return true;
        }
        self.order.iter().enumerate().all(|(pos, id)| {
            let state = &self.nodes[id];
            let want_succ = self.order[(pos + 1) % n];
            let want_pred = self.order[(pos + n - 1) % n];
            state.successors.first() == Some(&want_succ)
                && (n == 1 || state.predecessor == Some(want_pred))
        })
    }

    fn stabilize_node(&mut self, id: &Key) {
        if !self.nodes.contains_key(id) {
            return;
        }
        let succ = self.first_live_successor(id);
        self.bump_messages(2); // get-predecessor RPC

        // x = successor.predecessor; adopt if it sits between us.
        let x = self.nodes.get(&succ).and_then(|s| s.predecessor);
        let new_succ = match x {
            Some(x) if self.nodes.contains_key(&x) && x.in_open_interval(id, &succ) => x,
            _ => succ,
        };

        // Refresh own successor list from the (new) successor's list.
        let succ_list = {
            let s = &self.nodes[&new_succ];
            let mut list = vec![new_succ];
            list.extend(
                s.successors
                    .iter()
                    .filter(|k| self.nodes.contains_key(k))
                    .copied(),
            );
            list.truncate(self.cfg.successor_list_len.max(1));
            list
        };
        if let Some(state) = self.nodes.get_mut(id) {
            state.successors = succ_list;
        }

        // notify(successor, self)
        self.bump_messages(1);
        let me = *id;
        let adopt = match self.nodes.get(&new_succ).and_then(|s| s.predecessor) {
            None => true,
            Some(p) => !self.nodes.contains_key(&p) || me.in_open_interval(&p, &new_succ),
        };
        if adopt && new_succ != me {
            if let Some(succ_state) = self.nodes.get_mut(&new_succ) {
                succ_state.predecessor = Some(me);
            }
        }
    }

    fn check_predecessor(&mut self, id: &Key) {
        let Some(state) = self.nodes.get(id) else {
            return;
        };
        if let Some(p) = state.predecessor {
            if !self.nodes.contains_key(&p) {
                self.nodes.get_mut(id).expect("checked").predecessor = None;
            }
        }
    }

    fn fix_finger_step(&mut self, id: &Key) {
        let Some(state) = self.nodes.get(id) else {
            return;
        };
        let i = state.next_finger;
        let target = id.wrapping_add(&Key::power_of_two(i));
        let (owner, _hops) = self.find_successor_from(*id, &target);
        let state = self.nodes.get_mut(id).expect("live node");
        state.fingers[i] = owner;
        state.next_finger = (i + 1) % KEY_BITS;
    }

    /// Repairs every finger of `id` with routed lookups.
    pub fn fix_all_fingers(&mut self, id: &Key) {
        if !self.nodes.contains_key(id) {
            return;
        }
        for i in 0..KEY_BITS {
            let target = id.wrapping_add(&Key::power_of_two(i));
            let (owner, _hops) = self.find_successor_from(*id, &target);
            let state = self.nodes.get_mut(id).expect("live node");
            state.fingers[i] = owner;
        }
    }

    /// The nodes holding replicas for `key`: the responsible node followed
    /// by `replication - 1` of its successors.
    fn replica_set(&self, key: &Key) -> Vec<Key> {
        let Some(primary) = self.responsible_node(key) else {
            return Vec::new();
        };
        let n = self.order.len();
        let pos = self.order.binary_search(&primary).expect("live node");
        (0..self.cfg.replication.max(1).min(n))
            .map(|k| self.order[(pos + k) % n])
            .collect()
    }

    /// Picks the next lookup origin, rotating through the ring.
    fn pick_origin(&self) -> Option<Key> {
        if self.order.is_empty() {
            return None;
        }
        let i = self.next_origin.fetch_add(1, Ordering::Relaxed) as usize;
        Some(self.order[i % self.order.len()])
    }

    fn bump_messages(&self, n: u64) {
        self.stats.messages.fetch_add(n, Ordering::Relaxed);
    }

    /// Restores the replication invariant after churn: every stored key's
    /// copies end up on exactly its current replica set (the responsible
    /// node and its `replication - 1` successors).
    ///
    /// This is the maintenance DHash performs continuously: joins shift
    /// responsibility to nodes that never received the data, failures
    /// knock copies out of replica sets, and graceful leaves consolidate
    /// them onto too few nodes. Run it after membership changes (typically
    /// together with [`ChordNetwork::converge`]). Returns the number of
    /// copies created.
    pub fn repair_replication(&mut self) -> usize {
        // Global collection pass: union of values per key.
        let mut all: BTreeMap<Key, Vec<Bytes>> = BTreeMap::new();
        for state in self.nodes.values() {
            for (key, values) in state.store.iter() {
                let merged = all.entry(*key).or_default();
                for v in values {
                    if !merged.contains(v) {
                        merged.push(v.clone());
                    }
                }
            }
        }
        // Placement pass: each key lives exactly on its replica set.
        let mut created = 0;
        for (key, values) in all {
            let replicas = self.replica_set(&key);
            for (node_key, state) in self.nodes.iter_mut() {
                let should_hold = replicas.contains(node_key);
                if should_hold {
                    for v in &values {
                        if state.store.put(key, v.clone()) {
                            created += 1;
                        }
                    }
                } else {
                    state.store.remove_all(&key);
                }
            }
        }
        if created > 0 {
            self.bump_messages(created as u64);
        }
        created
    }

    /// Direct access to a node's local store (read-only, for inspection).
    pub fn store_of(&self, id: &NodeId) -> Option<&NodeStore> {
        self.nodes.get(id.key()).map(|s| &s.store)
    }

    /// Per-node key counts, in ring order. Useful for load-balance studies.
    pub fn key_distribution(&self) -> Vec<(NodeId, usize)> {
        self.order
            .iter()
            .map(|id| (NodeId::from_key(*id), self.nodes[id].store.key_count()))
            .collect()
    }
}

impl Default for ChordNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl ChordNetwork {
    fn execute_inner(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        let Some(origin) = self.pick_origin() else {
            return Err(DhtError::NoLiveNodes);
        };
        match op {
            DhtOp::NodeFor(key) => {
                let (owner, _hops) = self.find_successor_from(origin, &key);
                Ok(DhtResponse::Node(NodeId::from_key(owner)))
            }
            DhtOp::Get(key) => Ok(DhtResponse::Values(self.get(&key))),
            DhtOp::Put { key, value } => {
                // Route (accounted), then place on the replica set.
                let (_owner, _hops) = self.find_successor_from(origin, &key);
                self.bump_messages(2); // store request + ack
                let mut stored = false;
                for node in self.replica_set(&key) {
                    let state = self.nodes.get_mut(&node).expect("live replica");
                    stored |= state.store.put(key, value.clone());
                }
                Ok(DhtResponse::Stored(stored))
            }
            DhtOp::Remove { key, value } => {
                let (_owner, _hops) = self.find_successor_from(origin, &key);
                self.bump_messages(2); // remove request + ack
                let mut removed = false;
                for node in self.replica_set(&key) {
                    let state = self.nodes.get_mut(&node).expect("live replica");
                    removed |= state.store.remove(&key, &value);
                }
                Ok(DhtResponse::Removed(removed))
            }
        }
    }
}

impl Dht for ChordNetwork {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if !self.metrics.is_enabled() {
            return self.execute_inner(op);
        }
        let kind = op.kind();
        let before = self.stats();
        let result = self.execute_inner(op);
        api::record_op(&self.metrics, kind, before, self.stats(), &result);
        result
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        let origin = self.pick_origin()?;
        let (owner, _hops) = self.find_successor_from(origin, key);
        Some(NodeId::from_key(owner))
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.order.iter().copied().map(NodeId::from_key).collect()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        let Some(origin) = self.pick_origin() else {
            return Vec::new();
        };
        let (owner, _hops) = self.find_successor_from(origin, key);
        self.bump_messages(2); // fetch request + response
        if let Some(state) = self.nodes.get(&owner) {
            let values = state.store.get(key);
            if !values.is_empty() {
                return values.to_vec();
            }
        }
        // DHash-style read repair path: a freshly-responsible node (e.g. a
        // joiner after a predecessor failure) may not hold the data yet;
        // fall back to the rest of the replica set.
        for replica in self.replica_set(key).into_iter().skip(1) {
            self.bump_messages(2);
            if let Some(state) = self.nodes.get(&replica) {
                let values = state.store.get(key);
                if !values.is_empty() {
                    return values.to_vec();
                }
            }
        }
        Vec::new()
    }

    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        crate::storage::merged_entries(self.nodes.values().map(|state| &state.store))
    }

    fn stats(&self) -> DhtStats {
        DhtStats {
            messages: self.stats.messages.load(Ordering::Relaxed),
            lookups: self.stats.lookups.load(Ordering::Relaxed),
            hops: self.stats.hops.load(Ordering::Relaxed),
        }
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

impl NodeChurn for ChordNetwork {
    fn spawn(&mut self, id: NodeId) -> bool {
        let Some(bootstrap) = self.order.first().copied() else {
            return false;
        };
        self.join(id, NodeId::from_key(bootstrap)).is_ok()
    }

    fn kill(&mut self, id: NodeId) -> bool {
        self.fail(id).is_ok()
    }

    fn stabilize(&mut self) {
        self.converge(64);
        self.repair_replication();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Key> {
        (0..n).map(|i| Key::hash_of(&format!("node-{i}"))).collect()
    }

    #[test]
    fn perfect_tables_are_converged() {
        let net = ChordNetwork::with_perfect_tables(keys(32));
        assert!(net.is_converged());
        assert_eq!(net.len(), 32);
    }

    #[test]
    fn routed_lookup_matches_oracle() {
        let net = ChordNetwork::with_perfect_tables(keys(64));
        for i in 0..200 {
            let key = Key::hash_of(&format!("data-{i}"));
            let oracle = net.responsible_node(&key).unwrap();
            for origin in [net.order[0], net.order[31], net.order[63]] {
                let (found, _) = net.find_successor_from(origin, &key);
                assert_eq!(found, oracle, "key {i} from {origin:?}");
            }
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let net = ChordNetwork::with_perfect_tables(keys(256));
        let mut total_hops = 0u32;
        let samples = 500;
        for i in 0..samples {
            let key = Key::hash_of(&format!("sample-{i}"));
            let (_, hops) = net.find_successor_from(net.order[i % 256], &key);
            total_hops += hops;
        }
        let mean = total_hops as f64 / samples as f64;
        // Theory: ~0.5 * log2(256) = 4 hops. Allow generous slack.
        assert!(mean > 1.0 && mean < 8.0, "mean hops {mean}");
    }

    #[test]
    fn put_get_roundtrip() {
        let mut net = ChordNetwork::with_perfect_tables(keys(16));
        for i in 0..50 {
            let key = Key::hash_of(&format!("item-{i}"));
            assert!(net.put(key, Bytes::from(format!("value-{i}"))));
        }
        for i in 0..50 {
            let key = Key::hash_of(&format!("item-{i}"));
            assert_eq!(net.get(&key), vec![Bytes::from(format!("value-{i}"))]);
        }
    }

    #[test]
    fn multi_value_registration() {
        let mut net = ChordNetwork::with_perfect_tables(keys(8));
        let key = Key::hash_of("shared");
        assert!(net.put(key, Bytes::from_static(b"a")));
        assert!(net.put(key, Bytes::from_static(b"b")));
        assert!(!net.put(key, Bytes::from_static(b"a"))); // duplicate
        let mut got = net.get(&key);
        got.sort();
        assert_eq!(
            got,
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")]
        );
    }

    #[test]
    fn remove_value() {
        let mut net = ChordNetwork::with_perfect_tables(keys(8));
        let key = Key::hash_of("shared");
        net.put(key, Bytes::from_static(b"a"));
        net.put(key, Bytes::from_static(b"b"));
        assert!(net.remove(&key, b"a"));
        assert!(!net.remove(&key, b"a"));
        assert_eq!(net.get(&key), vec![Bytes::from_static(b"b")]);
    }

    #[test]
    fn bootstrap_then_joins_converge() {
        let ids = keys(12);
        let mut net = ChordNetwork::new();
        net.bootstrap(NodeId::from_key(ids[0])).unwrap();
        for id in &ids[1..] {
            net.join(NodeId::from_key(*id), NodeId::from_key(ids[0]))
                .unwrap();
            net.run_maintenance(3);
        }
        let rounds = net.converge(50);
        assert!(net.is_converged(), "not converged after {rounds} rounds");
        assert_eq!(net.len(), 12);
    }

    #[test]
    fn join_duplicate_is_error() {
        let ids = keys(2);
        let mut net = ChordNetwork::new();
        net.bootstrap(NodeId::from_key(ids[0])).unwrap();
        net.join(NodeId::from_key(ids[1]), NodeId::from_key(ids[0]))
            .unwrap();
        let err = net.join(NodeId::from_key(ids[1]), NodeId::from_key(ids[0]));
        assert_eq!(
            err,
            Err(ChordError::DuplicateNode(NodeId::from_key(ids[1])))
        );
    }

    #[test]
    fn join_unknown_bootstrap_is_error() {
        let ids = keys(2);
        let mut net = ChordNetwork::new();
        net.bootstrap(NodeId::from_key(ids[0])).unwrap();
        let ghost = NodeId::hash_of("ghost");
        let err = net.join(NodeId::from_key(ids[1]), ghost);
        assert_eq!(err, Err(ChordError::UnknownNode(ghost)));
    }

    #[test]
    fn joining_node_takes_over_keys() {
        let ids = keys(8);
        let mut net = ChordNetwork::with_perfect_tables(ids.clone());
        // Store data, then join a new node and verify all data still found.
        let data: Vec<Key> = (0..100).map(|i| Key::hash_of(&format!("d{i}"))).collect();
        for (i, k) in data.iter().enumerate() {
            net.put(*k, Bytes::from(format!("v{i}")));
        }
        let newcomer = NodeId::hash_of("newcomer");
        net.join(newcomer, NodeId::from_key(ids[0])).unwrap();
        net.converge(50);
        for (i, k) in data.iter().enumerate() {
            assert_eq!(net.get(k), vec![Bytes::from(format!("v{i}"))], "key {i}");
        }
    }

    #[test]
    fn graceful_leave_preserves_data() {
        let ids = keys(8);
        let mut net = ChordNetwork::with_perfect_tables(ids.clone());
        let data: Vec<Key> = (0..100).map(|i| Key::hash_of(&format!("d{i}"))).collect();
        for (i, k) in data.iter().enumerate() {
            net.put(*k, Bytes::from(format!("v{i}")));
        }
        net.leave(NodeId::from_key(ids[3])).unwrap();
        net.converge(50);
        for (i, k) in data.iter().enumerate() {
            assert_eq!(net.get(k), vec![Bytes::from(format!("v{i}"))], "key {i}");
        }
    }

    #[test]
    fn ring_heals_after_failure() {
        let ids = keys(16);
        let mut net = ChordNetwork::with_perfect_tables(ids.clone());
        net.fail(NodeId::from_key(ids[5])).unwrap();
        net.fail(NodeId::from_key(ids[6])).unwrap();
        net.converge(50);
        assert!(net.is_converged());
        assert_eq!(net.len(), 14);
        // Lookups still resolve to the oracle.
        for i in 0..50 {
            let key = Key::hash_of(&format!("q{i}"));
            let (found, _) = net.find_successor_from(net.order[0], &key);
            assert_eq!(found, net.responsible_node(&key).unwrap());
        }
    }

    #[test]
    fn replication_survives_failure() {
        let ids = keys(8);
        let cfg = ChordConfig {
            replication: 3,
            ..ChordConfig::default()
        };
        let mut net = ChordNetwork::with_perfect_tables_and_config(ids.clone(), cfg);
        let key = Key::hash_of("precious");
        net.put(key, Bytes::from_static(b"data"));
        let primary = net.responsible_node(&key).unwrap();
        net.fail(NodeId::from_key(primary)).unwrap();
        net.converge(50);
        assert_eq!(net.get(&key), vec![Bytes::from_static(b"data")]);
    }

    #[test]
    fn without_replication_failure_loses_data() {
        let ids = keys(8);
        let mut net = ChordNetwork::with_perfect_tables(ids);
        let key = Key::hash_of("fragile");
        net.put(key, Bytes::from_static(b"data"));
        let primary = net.responsible_node(&key).unwrap();
        net.fail(NodeId::from_key(primary)).unwrap();
        net.converge(50);
        assert!(net.get(&key).is_empty());
    }

    #[test]
    fn get_falls_back_to_replicas_when_new_primary_is_empty() {
        // A node joins right in front of a key's primary, then the old
        // primary fails: the new primary never received the data but the
        // replicas still hold it — reads must succeed (DHash read path).
        let ids = keys(16);
        let cfg = ChordConfig {
            replication: 3,
            ..ChordConfig::default()
        };
        let mut net = ChordNetwork::with_perfect_tables_and_config(ids.clone(), cfg);
        let key = Key::hash_of("resilient");
        net.put(key, Bytes::from_static(b"v"));
        let primary = net.responsible_node(&key).unwrap();
        // Craft a joiner landing between the key and its primary.
        let joiner = key.wrapping_add(&Key::from_u64(1));
        assert!(joiner.in_interval(&key, &primary));
        net.join(NodeId::from_key(joiner), NodeId::from_key(ids[0]))
            .unwrap();
        net.converge(50);
        net.fail(NodeId::from_key(primary)).unwrap();
        net.converge(50);
        // New primary is between key and old primary... but has no copy.
        assert_eq!(net.get(&key), vec![Bytes::from_static(b"v")]);
    }

    #[test]
    fn repair_replication_restores_full_sets() {
        let ids = keys(24);
        let cfg = ChordConfig {
            replication: 3,
            ..ChordConfig::default()
        };
        let mut net = ChordNetwork::with_perfect_tables_and_config(ids.clone(), cfg);
        let data: Vec<Key> = (0..60).map(|i| Key::hash_of(&format!("d{i}"))).collect();
        for (i, k) in data.iter().enumerate() {
            net.put(*k, Bytes::from(format!("v{i}")));
        }
        // Churn erodes replica sets.
        for i in 0..4 {
            net.join(
                NodeId::hash_of(&format!("new-{i}")),
                NodeId::from_key(ids[0]),
            )
            .unwrap();
        }
        net.leave(NodeId::from_key(ids[3])).unwrap();
        net.fail(NodeId::from_key(ids[7])).unwrap();
        net.converge(50);
        net.repair_replication();
        // Every key has exactly `replication` live copies on its set.
        for k in &data {
            let holders = net
                .nodes()
                .iter()
                .filter(|n| net.store_of(n).is_some_and(|s| s.contains_key(k)))
                .count();
            assert_eq!(holders, 3, "key {k:?} holders");
        }
        // And a second repair is a no-op.
        assert_eq!(net.repair_replication(), 0);
    }

    #[test]
    fn repair_replication_drops_stray_copies() {
        let ids = keys(12);
        let cfg = ChordConfig {
            replication: 2,
            ..ChordConfig::default()
        };
        let mut net = ChordNetwork::with_perfect_tables_and_config(ids.clone(), cfg);
        let key = Key::hash_of("item");
        net.put(key, Bytes::from_static(b"v"));
        // A graceful leave consolidates copies onto the successor, leaving
        // a stray copy outside the new replica set once membership shifts.
        let primary = net.responsible_node(&key).unwrap();
        net.leave(NodeId::from_key(primary)).unwrap();
        net.converge(50);
        net.repair_replication();
        let holders = net
            .nodes()
            .iter()
            .filter(|n| net.store_of(n).is_some_and(|s| s.contains_key(&key)))
            .count();
        assert_eq!(holders, 2);
        assert_eq!(net.get(&key), vec![Bytes::from_static(b"v")]);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = ChordNetwork::with_perfect_tables(keys(32));
        let before = net.stats();
        net.put(Key::hash_of("x"), Bytes::from_static(b"y"));
        net.get(&Key::hash_of("x"));
        let after = net.stats();
        assert!(after.lookups >= before.lookups + 2);
        assert!(after.messages > before.messages);
    }

    #[test]
    fn empty_network_behaviour() {
        let mut net = ChordNetwork::new();
        assert!(net.is_empty());
        assert_eq!(net.node_for(&Key::hash_of("x")), None);
        assert!(net.get(&Key::hash_of("x")).is_empty());
        assert!(!net.put(Key::hash_of("x"), Bytes::from_static(b"v")));
        assert!(net.is_converged());
    }

    #[test]
    fn single_node_owns_everything() {
        let mut net = ChordNetwork::new();
        net.bootstrap(NodeId::hash_of("solo")).unwrap();
        for i in 0..20 {
            let k = Key::hash_of(&format!("k{i}"));
            net.put(k, Bytes::from(format!("v{i}")));
            assert_eq!(net.get(&k), vec![Bytes::from(format!("v{i}"))]);
        }
        assert_eq!(net.key_distribution()[0].1, 20);
    }

    #[test]
    fn key_distribution_is_roughly_balanced() {
        let mut net = ChordNetwork::with_perfect_tables(keys(32));
        for i in 0..3200 {
            net.put(Key::hash_of(&format!("item{i}")), Bytes::from_static(b"v"));
        }
        let dist = net.key_distribution();
        let max = dist.iter().map(|(_, c)| *c).max().unwrap();
        // SHA-1 spreads keys; with 32 nodes and 3200 keys the max load
        // shouldn't exceed ~6x the mean (consistent hashing variance).
        assert!(max < 600, "max per-node keys {max}");
    }
}
