//! [`RemoteDht`]: the [`Dht`] trait over real TCP sockets.
//!
//! The client holds the cluster membership (node id → address) and routes
//! exactly like [`RingDht`](p2p_index_dht::RingDht): the node responsible
//! for a key is its clockwise successor on the identifier circle, resolved
//! with one local `BTreeMap::range` lookup. Only storage operations (put /
//! get / remove) cross the wire — `NodeFor` is answered locally at zero
//! message cost, mirroring the in-process substrates — so a cluster of
//! single-node servers named `node-0..n-1` produces results and message
//! counts identical to an in-process `RingDht::with_named_nodes(n)`.
//!
//! # Error mapping
//!
//! Remote [`DhtError`]s travel the wire as stable codes and surface
//! unchanged. Transport failures — connect refused, socket timeout, short
//! read, malformed reply, response-id mismatch — all map to
//! [`DhtError::Timeout`], the transient variant, so the index layer's
//! existing `RetryPolicy` retries them without knowing sockets exist. A
//! failed connection is dropped from the pool and redialed on the next
//! call.
//!
//! # Batching
//!
//! Everything rides one code path: [`Dht::execute_many`]. The ops are
//! grouped by routed member; a member owed exactly one op gets a plain
//! unary `Request` frame (maximum interop — the frame is byte-identical
//! to what a v1 build sends), a member owed several gets one
//! [`Message::Batch`] frame. All frames are written before any reply is
//! read, so the member servers execute concurrently and a k-child
//! fan-out costs one frame pair per routed member instead of one per op.
//! A unary [`Dht::execute`] is just a batch of one.
//!
//! # Accounting
//!
//! The `messages` counter increments by 2 for every op whose
//! request/response pair completes (the RPC-pair convention pinned in
//! the conformance suite — a batch of k ops that completes counts 2·k
//! messages even though only two frames moved); `lookups` increments for
//! successful put/get, matching `RingDht`. Transport failures count
//! nothing — no response arrived, so no pair completed, and every op
//! riding the failed frame maps to [`DhtError::Timeout`]. `net.*`
//! metrics additionally count raw frames and bytes, with batch frames
//! broken out under `net.batch.*`, which is what lets the multi-process
//! harness cross-check frames against message accounting.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bytes::Bytes;
use p2p_index_dht::{
    self as dht_api, placement, Dht, DhtError, DhtOp, DhtResponse, DhtStats, Key, NodeId,
};
use p2p_index_obs::MetricsRegistry;

use crate::wire::{read_message_with, write_message, write_message_with, Message, RecvError};

/// Tuning knobs for a [`RemoteDht`] client.
#[derive(Debug, Clone)]
pub struct RemoteDhtConfig {
    /// Timeout for dialing a member.
    pub connect_timeout: Duration,
    /// Socket read timeout — bounds how long one RPC can stall.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Replication factor R the cluster was configured with: each key's
    /// candidate members are its R clockwise successors (shared placement
    /// with the servers via `p2p_index_dht::placement`). `1` (the
    /// default) disables replica routing entirely — frames, results, and
    /// accounting are identical to prior builds.
    pub replicas: usize,
    /// Read quorum Rq: a `Get` contacts Rq replicas in parallel and
    /// needs that many successful replies; the answer is the **union**
    /// of the replicas' value sets (rank order, first-seen dedup), so a
    /// stale replica can neither mask data the quorum saw nor hide the
    /// values only another replica still holds.
    pub read_quorum: usize,
}

impl Default for RemoteDhtConfig {
    fn default() -> Self {
        RemoteDhtConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            replicas: 1,
            read_quorum: 1,
        }
    }
}

/// How many pooled connections one client keeps per member. A single
/// pooled stream made every multi-threaded client serialize per member —
/// the client-side twin of the server's old global substrate mutex — so
/// the server's reader concurrency was unreachable from one process. A
/// small fixed set keeps that many RPCs to the same member in flight at
/// once; beyond it, callers briefly queue on a slot.
const CONNS_PER_MEMBER: usize = 4;

/// One cluster member: a small pool of connections to a `dhtd` server,
/// keyed by the node identifier it serves.
struct Member {
    id: NodeId,
    addr: SocketAddr,
    /// Lazily-dialed pooled connections; each slot is poisoned-on-failure
    /// (dropped and redialed on the next call).
    conns: Vec<Mutex<Option<TcpStream>>>,
    /// Rotation point for slot leasing, so concurrent callers spread
    /// across the pool instead of all contending on slot 0.
    next_slot: AtomicUsize,
}

impl Member {
    fn new(id: NodeId, addr: SocketAddr) -> Member {
        Member {
            id,
            addr,
            conns: (0..CONNS_PER_MEMBER).map(|_| Mutex::new(None)).collect(),
            next_slot: AtomicUsize::new(0),
        }
    }

    /// Leases one connection slot. Warm idle slots win: a sequential
    /// caller stays on one established connection (identical wire
    /// behaviour to the old single-stream pool), and a cold slot is only
    /// dialed when every warm slot is busy — so the pool grows exactly
    /// as far as the caller's actual concurrency. Only when every slot
    /// is busy does the caller queue, on a rotated slot so queued
    /// callers spread across the pool. Deadlock-free under concurrent
    /// batches: every thread acquires members in ring order and holds at
    /// most one slot per member, so wait chains only ever point up-ring.
    fn lease(&self) -> MutexGuard<'_, Option<TcpStream>> {
        for pass in 0..2 {
            for slot in &self.conns {
                if let Ok(guard) = slot.try_lock() {
                    if pass == 1 || guard.is_some() {
                        return guard;
                    }
                }
            }
        }
        let start = self.next_slot.fetch_add(1, Ordering::Relaxed);
        self.conns[start % self.conns.len()]
            .lock()
            .expect("connection pool poisoned")
    }
}

/// One routed member's in-flight frame pair during a pipelined batch.
/// The connection guard is held from write to read so the reply phase
/// reads the same stream the request went out on.
struct InFlight<'a> {
    slot: MutexGuard<'a, Option<TcpStream>>,
    id: u64,
    /// `true` when the frame was a [`Message::Batch`] (two or more ops);
    /// single-op groups travel as plain unary requests.
    batch: bool,
    started: Instant,
    /// `(original op index, attempt rank)` in send order.
    group: Vec<(usize, usize)>,
}

/// One storage op's routing state across failover rounds: the candidate
/// replicas in rank order, how many have been tried, and the successful
/// replies gathered so far toward the quorum.
struct Route {
    op: DhtOp,
    kind: &'static str,
    /// Candidate members — the key's replica set, primary first.
    candidates: Vec<Key>,
    /// Ranks `0..tried` have been attempted (successfully or not).
    tried: usize,
    /// Successes required to settle: the read quorum for `Get`, one for
    /// writes (the server enforces the write quorum behind one reply).
    want: usize,
    /// `(rank, response)` successes gathered so far.
    successes: Vec<(usize, DhtResponse)>,
    /// The last *remote* error reply observed (as opposed to a transport
    /// failure); decides whether settling by exhaustion counts as a
    /// completed RPC pair in the stats.
    reply_error: Option<DhtError>,
}

impl Route {
    /// The settled response once `want` successes are in. Reads merge:
    /// the answer is the union of every replica's value set, gathered in
    /// rank order with first-seen dedup, so replicas holding disjoint
    /// stale subsets still sum to the full entry (each value survives on
    /// at least one of the Rq replicas whenever Rq + W > R). Other ops
    /// settle on the lowest-ranked reply.
    fn settle_response(&mut self) -> DhtResponse {
        self.successes.sort_by_key(|(rank, _)| *rank);
        if self
            .successes
            .iter()
            .any(|(_, resp)| matches!(resp, DhtResponse::Values(_)))
        {
            let mut merged: Vec<Bytes> = Vec::new();
            for (_, resp) in &self.successes {
                if let DhtResponse::Values(values) = resp {
                    for v in values {
                        if !merged.contains(v) {
                            merged.push(v.clone());
                        }
                    }
                }
            }
            return DhtResponse::Values(merged);
        }
        self.successes[0].1.clone()
    }
}

/// A DHT client speaking the `crates/net` wire protocol to a cluster of
/// `dhtd` servers, implementing the same [`Dht`] trait the in-process
/// substrates do — `IndexService`, retry policies, and metrics all run
/// unchanged over real sockets.
pub struct RemoteDht {
    /// Node position → member, ordered around the identifier circle so
    /// `range(key..)` resolves the clockwise successor, as in `RingDht`.
    members: BTreeMap<Key, Member>,
    /// The member ring keys, ascending — the placement ring shared with
    /// the servers' replica fan-out and repair.
    ring: Vec<Key>,
    config: RemoteDhtConfig,
    next_request_id: AtomicU64,
    lookups: AtomicU64,
    messages: AtomicU64,
    metrics: MetricsRegistry,
}

impl RemoteDht {
    /// Creates a client for the given `(node id, address)` members.
    /// Connections are dialed lazily on first use, so constructing a
    /// client never blocks; an empty member list yields a valid client
    /// whose operations report [`DhtError::NoLiveNodes`]. Quorum settings
    /// are clamped to sane bounds (`1 ≤ Rq ≤ R ≤ n`).
    pub fn connect(members: Vec<(NodeId, SocketAddr)>, mut config: RemoteDhtConfig) -> RemoteDht {
        let members: BTreeMap<Key, Member> = members
            .into_iter()
            .map(|(id, addr)| (*id.key(), Member::new(id, addr)))
            .collect();
        let ring: Vec<Key> = members.keys().copied().collect();
        config.replicas = config.replicas.clamp(1, ring.len().max(1));
        config.read_quorum = config.read_quorum.clamp(1, config.replicas);
        RemoteDht {
            members,
            ring,
            config,
            next_request_id: AtomicU64::new(1),
            lookups: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Maps addresses to the standard experiment node naming: the `i`-th
    /// address serves `NodeId::hash_of("node-{i}")` — the same identifiers
    /// `RingDht::with_named_nodes` uses, which is what makes remote and
    /// in-process runs comparable.
    pub fn named_members(addrs: &[SocketAddr]) -> Vec<(NodeId, SocketAddr)> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| (NodeId::hash_of(&format!("node-{i}")), *addr))
            .collect()
    }

    /// The configured members as `(id, addr)`, in ring order.
    pub fn members(&self) -> Vec<(NodeId, SocketAddr)> {
        self.members.values().map(|m| (m.id, m.addr)).collect()
    }

    /// Sends a shutdown frame to every member, telling each `dhtd` to stop
    /// gracefully. Dial or write failures are ignored: an unreachable
    /// server needs no shutdown.
    pub fn shutdown_members(&self) {
        for member in self.members.values() {
            let mut slot = member.lease();
            let stream = match slot.take() {
                Some(stream) => Some(stream),
                None => self.dial(member.addr).ok(),
            };
            if let Some(mut stream) = stream {
                let _ = write_message(&mut stream, &Message::Shutdown);
            }
        }
    }

    /// The clockwise successor of `key` among the members, or `None` when
    /// the member list is empty. Identical placement to `RingDht::owner`.
    fn owner_key(&self, key: &Key) -> Option<Key> {
        self.members
            .range(*key..)
            .next()
            .or_else(|| self.members.iter().next())
            .map(|(k, _)| *k)
    }

    fn dial(&self, addr: SocketAddr) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Applies the ring accounting convention to one completed RPC
    /// result: +2 messages per pair, +1 lookup for successful put/get.
    fn complete(
        &self,
        kind: &'static str,
        result: Result<DhtResponse, DhtError>,
    ) -> Result<DhtResponse, DhtError> {
        self.messages.fetch_add(2, Ordering::Relaxed);
        if result.is_ok() && matches!(kind, "put" | "get") {
            self.lookups.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// The one wire code path: executes a batch in failover rounds, one
    /// frame pair per routed member per round.
    ///
    /// `NodeFor` ops are answered locally at zero message cost. Each
    /// storage op routes to its key's replica set (`R` clockwise
    /// successors; at the default `R = 1`, exactly the single owner as in
    /// every prior build). Round one sends reads to their first `Rq`
    /// replicas and writes to the primary, grouped per member in ring
    /// order — a single-op group as a plain unary `Request`
    /// (byte-identical to a v1 build's traffic), a multi-op group as one
    /// [`Message::Batch`]. All of a round's frames are written before any
    /// reply is read, so member servers work concurrently.
    ///
    /// One ordering carve-out: a `Get` whose key the *same batch* also
    /// writes is read from its primary alone (`want = 1`). Member frames
    /// race each other on the wire, so a non-primary replica could
    /// answer such a read before — or after — the primary's replication
    /// fan-out for the conflicting write reaches it, and the
    /// lowest-rank-non-empty settle rule would then leak the reordered
    /// state. The primary applies its frame's ops in batch order, so its
    /// answer is exactly the sequential one. Pure read batches (every
    /// multi-get a search issues) keep full quorum protection.
    ///
    /// A failed attempt — transport failure or a remote transient
    /// [`DhtError::Timeout`] — is retried against the op's next untried
    /// replica in the following round, so a dead member costs one extra
    /// pipelined round, not a client-visible error and not any of the
    /// index layer's `RetryPolicy` budget. Non-transient remote errors
    /// settle immediately. An op whose replicas are exhausted settles as
    /// [`DhtError::Timeout`].
    ///
    /// Accounting is per *op*, not per attempt: one completed RPC pair
    /// (+2 messages, +1 lookup for ok put/get) when an op settles from a
    /// reply, nothing when it settles by transport exhaustion — which at
    /// `R = 1` is bit-for-bit the historical convention.
    fn execute_many_inner(&self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        if self.members.is_empty() {
            return ops
                .into_iter()
                .map(|_| Err(DhtError::NoLiveNodes))
                .collect();
        }
        let mut results: Vec<Option<Result<DhtResponse, DhtError>>> = vec![None; ops.len()];
        let mut routes: Vec<Option<Route>> = Vec::with_capacity(ops.len());
        // Keys this batch writes: quorum reads of them must degrade to
        // primary-only (see the ordering carve-out above). Irrelevant at
        // R = 1, where every read is primary-only already.
        let written: BTreeSet<Key> = if self.config.replicas > 1 {
            ops.iter()
                .filter(|op| matches!(op, DhtOp::Put { .. } | DhtOp::Remove { .. }))
                .map(|op| *op.key())
                .collect()
        } else {
            BTreeSet::new()
        };
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                DhtOp::NodeFor(key) => {
                    let owner = self
                        .owner_key(&key)
                        .expect("non-empty member list has an owner");
                    results[i] = Some(Ok(DhtResponse::Node(self.members[&owner].id)));
                    routes.push(None);
                }
                op => {
                    self.metrics.incr(&format!("net.ops.{}", op.kind()));
                    let candidates =
                        placement::replica_keys(&self.ring, op.key(), self.config.replicas);
                    let want = if matches!(op, DhtOp::Get(_)) && !written.contains(op.key()) {
                        self.config.read_quorum.min(candidates.len())
                    } else {
                        1
                    };
                    routes.push(Some(Route {
                        kind: op.kind(),
                        op,
                        candidates,
                        tried: 0,
                        want,
                        successes: Vec::new(),
                        reply_error: None,
                    }));
                }
            }
        }
        let mut round = 0usize;
        // One encode/decode scratch buffer for the whole call — frames
        // within a round are written, then read, strictly in sequence.
        let mut scratch: Vec<u8> = Vec::new();
        loop {
            round += 1;
            // Scheduling: every unsettled op claims its next untried
            // replicas, up to its remaining quorum deficit; an op with
            // none left settles by exhaustion.
            let mut attempts: BTreeMap<Key, Vec<(usize, usize)>> = BTreeMap::new();
            for (i, slot) in routes.iter_mut().enumerate() {
                let Some(route) = slot else { continue };
                if results[i].is_some() {
                    continue;
                }
                let deficit = route.want - route.successes.len();
                let available = route.candidates.len() - route.tried;
                if available == 0 {
                    // Out of replicas. A remote error reply caused this
                    // (count the pair, as a unary client would); pure
                    // transport failures completed no pair and count
                    // nothing.
                    self.metrics.incr("net.quorum.exhausted");
                    results[i] = Some(match route.reply_error.take() {
                        Some(e) => self.complete(route.kind, Err(e)),
                        None => Err(DhtError::Timeout),
                    });
                    continue;
                }
                for _ in 0..deficit.min(available) {
                    let rank = route.tried;
                    let member = route.candidates[rank];
                    route.tried += 1;
                    if round > 1 {
                        self.metrics.incr("net.quorum.failovers");
                    }
                    attempts.entry(member).or_default().push((i, rank));
                }
            }
            if attempts.is_empty() {
                break;
            }
            // Write phase: one frame per member, all requests on the wire
            // before the first reply is awaited. Connection guards are
            // held in ring order, so concurrent batches cannot deadlock.
            let mut in_flight: Vec<InFlight<'_>> = Vec::with_capacity(attempts.len());
            // A failed attempt needs no bookkeeping here: the next
            // round's scheduler recomputes each op's quorum deficit and
            // claims fresh replicas (or settles by exhaustion).
            for (member_key, group) in attempts {
                let member = &self.members[&member_key];
                let mut slot = member.lease();
                if slot.is_none() {
                    match self.dial(member.addr) {
                        Ok(stream) => *slot = Some(stream),
                        Err(_) => {
                            self.metrics.incr("net.connect_errors");
                            continue;
                        }
                    }
                }
                let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
                let batch = group.len() > 1;
                let msg = if batch {
                    Message::Batch {
                        id,
                        ops: group
                            .iter()
                            .map(|&(i, _)| routes[i].as_ref().expect("routed op").op.clone())
                            .collect(),
                    }
                } else {
                    Message::Request {
                        id,
                        op: routes[group[0].0].as_ref().expect("routed op").op.clone(),
                    }
                };
                let started = Instant::now();
                let stream = slot.as_mut().expect("connection just ensured");
                match write_message_with(stream, &msg, &mut scratch) {
                    Ok(sent) => {
                        self.metrics.incr("net.frames_out");
                        self.metrics.add("net.bytes_out", sent as u64);
                        if batch {
                            self.metrics.incr("net.batch.frames_out");
                        }
                        in_flight.push(InFlight {
                            slot,
                            id,
                            batch,
                            started,
                            group,
                        });
                    }
                    Err(_) => {
                        self.metrics.incr("net.transport_errors");
                        *slot = None;
                    }
                }
            }
            // Read phase, same member order: each reply feeds its ops'
            // routes; ops settle the moment their quorum is reached.
            for mut flight in in_flight {
                let stream = flight.slot.as_mut().expect("stream pending a reply");
                let (reply, received) = match read_message_with(stream, &mut scratch) {
                    Ok(ok) => ok,
                    Err(RecvError::Closed) | Err(RecvError::Io(_)) => {
                        self.metrics.incr("net.transport_errors");
                        *flight.slot = None;
                        continue;
                    }
                    Err(RecvError::Wire(_)) => {
                        self.metrics.incr("net.decode_errors");
                        *flight.slot = None;
                        continue;
                    }
                };
                self.metrics.incr("net.frames_in");
                self.metrics.add("net.bytes_in", received as u64);
                let elapsed = flight.started.elapsed().as_micros() as u64;
                match reply {
                    Message::Response { id, result } if !flight.batch && id == flight.id => {
                        self.metrics.observe("net.rpc_micros", elapsed);
                        let (index, rank) = flight.group[0];
                        self.absorb(&mut routes, &mut results, index, rank, result);
                    }
                    Message::BatchReply {
                        id,
                        results: answers,
                    } if flight.batch && id == flight.id && answers.len() == flight.group.len() => {
                        self.metrics.incr("net.batch.frames_in");
                        self.metrics.add("net.batch.ops", answers.len() as u64);
                        self.metrics.observe("net.batch.rpc_micros", elapsed);
                        for (&(index, rank), result) in flight.group.iter().zip(answers) {
                            self.absorb(&mut routes, &mut results, index, rank, result);
                        }
                    }
                    // A mismatched id, kind, or result count means the
                    // stream is out of sync; drop it rather than guess.
                    _ => {
                        self.metrics.incr("net.decode_errors");
                        *flight.slot = None;
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every op resolved exactly once"))
            .collect()
    }

    /// Feeds one attempt's remote reply into its op's route, settling
    /// the op if the quorum is reached or the error is final.
    fn absorb(
        &self,
        routes: &mut [Option<Route>],
        results: &mut [Option<Result<DhtResponse, DhtError>>],
        index: usize,
        rank: usize,
        result: Result<DhtResponse, DhtError>,
    ) {
        if results[index].is_some() {
            // A slower sibling attempt answered after the op settled.
            return;
        }
        let route = routes[index].as_mut().expect("reply for a routed op");
        match result {
            Ok(resp) => {
                route.successes.push((rank, resp));
                if route.successes.len() >= route.want {
                    results[index] = Some(self.complete(route.kind, Ok(route.settle_response())));
                }
            }
            Err(DhtError::Timeout) => {
                // Transient: remember it and let the scheduler fail over.
                route.reply_error = Some(DhtError::Timeout);
            }
            Err(e) => {
                // Final remote error: no replica can do better.
                results[index] = Some(self.complete(route.kind, Err(e)));
            }
        }
    }

    fn execute_inner(&self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        self.execute_many_inner(vec![op])
            .pop()
            .expect("one result per op")
    }
}

impl Dht for RemoteDht {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if !self.metrics.is_enabled() {
            return self.execute_inner(op);
        }
        let kind = op.kind();
        let before = self.stats();
        let result = self.execute_inner(op);
        dht_api::record_op(&self.metrics, kind, before, self.stats(), &result);
        result
    }

    fn execute_many(&mut self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        if !self.metrics.is_enabled() {
            return self.execute_many_inner(ops);
        }
        let kinds: Vec<&'static str> = ops.iter().map(|op| op.kind()).collect();
        let before = self.stats();
        let results = self.execute_many_inner(ops);
        dht_api::record_many(&self.metrics, &kinds, before, self.stats(), &results);
        results
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        self.owner_key(key).map(|k| self.members[&k].id)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.members.values().map(|m| m.id).collect()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        match self.execute_inner(DhtOp::Get(*key)) {
            Ok(response) => response.into_values(),
            Err(_) => Vec::new(),
        }
    }

    fn stats(&self) -> DhtStats {
        DhtStats {
            messages: self.messages.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            hops: 0,
        }
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    fn len(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DhtServer, ServerConfig};
    use p2p_index_dht::RingDht;

    fn free_addr() -> SocketAddr {
        // Bind then drop: the port is free again immediately after, giving
        // a loopback address that refuses connections.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn empty_member_list_reports_no_live_nodes() {
        let mut remote = RemoteDht::connect(Vec::new(), RemoteDhtConfig::default());
        assert!(remote.is_empty());
        assert_eq!(
            remote.execute(DhtOp::Get(Key::hash_of("k"))),
            Err(DhtError::NoLiveNodes)
        );
        assert_eq!(remote.node_for(&Key::hash_of("k")), None);
        assert!(Dht::get(&remote, &Key::hash_of("k")).is_empty());
    }

    #[test]
    fn connect_refused_maps_to_transient_timeout() {
        let mut remote = RemoteDht::connect(
            vec![(NodeId::hash_of("node-0"), free_addr())],
            RemoteDhtConfig {
                connect_timeout: Duration::from_millis(200),
                ..RemoteDhtConfig::default()
            },
        );
        let err = remote
            .execute(DhtOp::Get(Key::hash_of("k")))
            .expect_err("nobody is listening");
        assert_eq!(err, DhtError::Timeout);
        assert!(err.is_transient(), "transport faults must be retriable");
        // No response frame arrived, so no RPC pair completed.
        assert_eq!(remote.stats().messages, 0);
    }

    #[test]
    fn node_for_is_local_and_free() {
        let server = DhtServer::spawn(
            Box::new(RingDht::with_named_nodes(1)),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .unwrap();
        let mut remote = RemoteDht::connect(
            RemoteDht::named_members(&[server.local_addr()]),
            RemoteDhtConfig::default(),
        );
        let resolved = remote
            .execute(DhtOp::NodeFor(Key::hash_of("anything")))
            .unwrap();
        assert_eq!(resolved, DhtResponse::Node(NodeId::hash_of("node-0")));
        assert_eq!(remote.stats().messages, 0, "NodeFor never hits the wire");
        server.shutdown();
    }

    #[test]
    fn remote_accounting_matches_in_process_ring() {
        let ids: Vec<Key> = (0..3).map(|i| Key::hash_of(&format!("node-{i}"))).collect();
        let servers: Vec<DhtServer> = ids
            .iter()
            .map(|id| {
                DhtServer::spawn(
                    Box::new(RingDht::from_ids([*id])),
                    "127.0.0.1:0",
                    ServerConfig::default(),
                )
                .unwrap()
            })
            .collect();
        let members: Vec<(NodeId, SocketAddr)> = ids
            .iter()
            .zip(&servers)
            .map(|(id, s)| (NodeId::from_key(*id), s.local_addr()))
            .collect();
        let mut remote = RemoteDht::connect(members, RemoteDhtConfig::default());
        let mut ring = RingDht::from_ids(ids);

        for i in 0..20 {
            let key = Key::hash_of(&format!("item-{i}"));
            let value = Bytes::from(format!("value-{i}"));
            assert_eq!(remote.put(key, value.clone()), ring.put(key, value));
        }
        for i in 0..20 {
            let key = Key::hash_of(&format!("item-{i}"));
            assert_eq!(Dht::get(&remote, &key), Dht::get(&ring, &key), "item {i}");
            assert_eq!(remote.node_for(&key), ring.node_for(&key));
        }
        assert!(remote.remove(&Key::hash_of("item-0"), b"value-0"));
        assert!(ring.remove(&Key::hash_of("item-0"), b"value-0"));

        assert_eq!(remote.stats(), ring.stats(), "accounting must be identical");
        remote.shutdown_members();
    }

    #[test]
    fn execute_many_matches_unary_twin_and_batches_frames() {
        let ids: Vec<Key> = (0..3).map(|i| Key::hash_of(&format!("node-{i}"))).collect();
        let servers: Vec<DhtServer> = ids
            .iter()
            .map(|id| {
                DhtServer::spawn(
                    Box::new(RingDht::from_ids([*id])),
                    "127.0.0.1:0",
                    ServerConfig::default(),
                )
                .unwrap()
            })
            .collect();
        let members: Vec<(NodeId, SocketAddr)> = ids
            .iter()
            .zip(&servers)
            .map(|(id, s)| (NodeId::from_key(*id), s.local_addr()))
            .collect();
        let metrics = MetricsRegistry::new();
        let mut remote = RemoteDht::connect(members, RemoteDhtConfig::default());
        remote.set_metrics(metrics.clone());
        let mut ring = RingDht::from_ids(ids);

        let mut ops: Vec<DhtOp> = Vec::new();
        for i in 0..10 {
            ops.push(DhtOp::Put {
                key: Key::hash_of(&format!("batch-item-{i}")),
                value: Bytes::from(format!("value-{i}")),
            });
        }
        for i in 0..10 {
            let key = Key::hash_of(&format!("batch-item-{i}"));
            ops.push(DhtOp::Get(key));
            ops.push(DhtOp::NodeFor(key));
        }
        ops.push(DhtOp::Remove {
            key: Key::hash_of("batch-item-0"),
            value: Bytes::from_static(b"value-0"),
        });

        let remote_results = remote.execute_many(ops.clone());
        let ring_results = ring.execute_many(ops);
        assert_eq!(
            remote_results, ring_results,
            "batch must equal the unary sequence"
        );
        assert_eq!(
            remote.stats(),
            ring.stats(),
            "batch accounting keeps the 2-messages-per-op convention"
        );

        let frames_out = metrics.counter("net.frames_out");
        assert!(
            frames_out <= 3,
            "one frame pair per routed member, not per op (got {frames_out})"
        );
        assert_eq!(frames_out, metrics.counter("net.frames_in"));
        assert!(
            metrics.counter("net.batch.ops") > 0,
            "the batch wire path must actually be exercised"
        );
        remote.shutdown_members();
    }

    #[test]
    fn quorum_read_merges_disjoint_stale_subsets() {
        // Three replicas each hold a *different* stale subset of one
        // key's entry — as after missed replication writes. A quorum
        // read across all three must return the union: under the old
        // prefer-lowest-ranked-non-empty rule, the primary's subset
        // would mask the values only the other replicas still hold.
        let key = Key::hash_of("partially-replicated-entry");
        let all: Vec<Bytes> = (0..6).map(|i| Bytes::from(format!("Q:/v/{i}"))).collect();
        let ids: Vec<Key> = (0..3).map(|i| Key::hash_of(&format!("node-{i}"))).collect();
        let servers: Vec<DhtServer> = ids
            .iter()
            .enumerate()
            .map(|(rank, id)| {
                let mut local = RingDht::from_ids([*id]);
                // Server `rank` holds values {rank, rank+3}: subsets are
                // disjoint and none is empty.
                local.put(key, all[rank].clone());
                local.put(key, all[rank + 3].clone());
                DhtServer::spawn(Box::new(local), "127.0.0.1:0", ServerConfig::default()).unwrap()
            })
            .collect();
        let members: Vec<(NodeId, SocketAddr)> = ids
            .iter()
            .zip(&servers)
            .map(|(id, s)| (NodeId::from_key(*id), s.local_addr()))
            .collect();
        let mut remote = RemoteDht::connect(
            members,
            RemoteDhtConfig {
                replicas: 3,
                read_quorum: 3,
                ..RemoteDhtConfig::default()
            },
        );
        let mut got = remote.execute(DhtOp::Get(key)).unwrap().into_values();
        got.sort();
        let mut want = all.clone();
        want.sort();
        assert_eq!(got, want, "quorum read must union the replica subsets");
        // The batch path settles through the same merge.
        let mut batch = remote.execute_many(vec![DhtOp::Get(key)]);
        let mut got = batch.remove(0).unwrap().into_values();
        got.sort();
        assert_eq!(got, want, "batched quorum read must union as well");
        remote.shutdown_members();
    }
}
